#include "io/binary_format.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "io/byte_io.h"
#include "io/compress.h"

namespace hgmatch {

namespace {

// Thin RAII + error-folding wrapper over std::FILE, mirroring ByteReader's
// sticky-failure contract so one decoder template (below) serves both the
// streaming file path and the in-memory wire path.
class BinaryFile {
 public:
  BinaryFile(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~BinaryFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr && !failed_; }
  void MarkFailed() { failed_ = true; }

  // Files are trusted local input: no cheap size bound exists before
  // reading, so the hostile-header pre-check degrades to a no-op and
  // truncation surfaces through the sticky failure bit instead.
  uint64_t remaining() const { return ~uint64_t{0}; }

  void Append(const void* data, size_t bytes) {  // encoder-sink face
    if (!ok()) return;
    failed_ |= std::fwrite(data, 1, bytes, file_) != bytes;
  }

  void Read(void* data, size_t bytes) {
    if (!ok()) return;
    failed_ |= std::fread(data, 1, bytes, file_) != bytes;
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

// Decodes one v1 hypergraph body (the magic is already consumed by the
// dispatcher) from any sticky-failure reader exposing
// ok()/remaining()/Read()/ReadValue() — BinaryFile streams from disk
// without materialising the file, ByteReader decodes wire payloads.
template <typename Reader>
Result<Hypergraph> DecodeHypergraphV1From(Reader& r) {
  const uint64_t num_vertices = r.template ReadValue<uint64_t>();
  const uint64_t num_edges = r.template ReadValue<uint64_t>();
  const uint64_t num_incidences = r.template ReadValue<uint64_t>();
  if (!r.ok()) return Status::Corruption("truncated header");
  // Every vertex costs one Label and every incidence one VertexId, so a
  // header whose counts exceed the bytes at hand is corrupt; checking here
  // stops a hostile header from driving the AddVertex loop below through
  // billions of iterations (the wire front end decodes untrusted bytes).
  if (num_vertices > r.remaining() / sizeof(Label) ||
      num_incidences > r.remaining() / sizeof(VertexId)) {
    return Status::Corruption("section counts exceed image size");
  }

  Hypergraph h;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    h.AddVertex(r.template ReadValue<Label>());
  }
  if (!r.ok()) return Status::Corruption("truncated label section");

  uint64_t incidences = 0;
  VertexSet members;
  for (uint64_t e = 0; e < num_edges; ++e) {
    const uint32_t arity = r.template ReadValue<uint32_t>();
    const Label edge_label = r.template ReadValue<Label>();
    if (!r.ok() || arity == 0 || arity > num_vertices) {
      return Status::Corruption("bad hyperedge record");
    }
    members.resize(arity);
    r.Read(members.data(), arity * sizeof(VertexId));
    if (!r.ok()) return Status::Corruption("truncated hyperedge");
    incidences += arity;
    Result<EdgeId> added = h.AddEdge(members, edge_label);
    if (!added.ok()) return added.status();
  }
  if (incidences != num_incidences) {
    return Status::Corruption("incidence count mismatch");
  }
  return h;
}

// Pulls the v2 chunk stream off an underlying reader and exposes the
// decompressed compact body through the same sticky-failure face, so the
// body decoder below never sees chunk boundaries. Allocation is bounded
// by one chunk's declared raw size, which is itself bounded by
// kBinaryChunkBytes before anything is read — a hostile chunk header
// cannot buy a large allocation.
template <typename Reader>
class ChunkedBodyReader {
 public:
  explicit ChunkedBodyReader(Reader& r) : r_(r) {}

  bool ok() const { return !failed_; }
  void MarkFailed() { failed_ = true; }
  bool Exhausted() const { return pos_ == body_.size(); }

  void Read(void* out, size_t bytes) {
    char* dst = static_cast<char*>(out);
    while (bytes > 0) {
      if (failed_) return;
      if (pos_ == body_.size() && !Refill()) return;
      const size_t take = std::min(bytes, body_.size() - pos_);
      std::memcpy(dst, body_.data() + pos_, take);
      pos_ += take;
      dst += take;
      bytes -= take;
    }
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  bool Refill() {
    const uint32_t raw = r_.template ReadValue<uint32_t>();
    const uint32_t stored = r_.template ReadValue<uint32_t>();
    const uint8_t codec = r_.template ReadValue<uint8_t>();
    if (!r_.ok() || raw == 0 || raw > kBinaryChunkBytes || stored > raw ||
        codec > 1 || (codec == 0 && stored != raw)) {
      failed_ = true;
      return false;
    }
    chunk_.resize(stored);
    r_.Read(chunk_.data(), stored);
    if (!r_.ok()) {
      failed_ = true;
      return false;
    }
    body_.clear();
    pos_ = 0;
    if (codec == 0) {
      body_.assign(chunk_.data(), chunk_.size());
    } else if (!LzssDecompress(std::string_view(chunk_.data(), chunk_.size()),
                               raw, &body_)
                    .ok() ||
               body_.size() != raw) {
      failed_ = true;
      return false;
    }
    return true;
  }

  Reader& r_;
  std::string chunk_;  // stored (possibly compressed) bytes
  std::string body_;   // decoded raw bytes of the current chunk
  size_t pos_ = 0;
  bool failed_ = false;
};

// Decodes one v2 compact body. Loops check ok() per iteration (instead of
// the v1 counts-vs-remaining pre-check, which varint bodies defeat): a
// hostile count bails at the first failed read, so work and memory stay
// bounded by the actual bytes supplied.
template <typename Reader>
Result<Hypergraph> DecodeHypergraphV2From(Reader& r) {
  const uint64_t num_vertices = r.template ReadValue<uint64_t>();
  const uint64_t num_edges = r.template ReadValue<uint64_t>();
  const uint64_t num_incidences = r.template ReadValue<uint64_t>();
  if (!r.ok()) return Status::Corruption("truncated header");

  ChunkedBodyReader<Reader> body(r);
  Hypergraph h;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    const uint64_t label = ReadVarint(body);
    if (!body.ok() || label > ~Label{0}) {
      return Status::Corruption("truncated label section");
    }
    h.AddVertex(static_cast<Label>(label));
  }

  uint64_t incidences = 0;
  VertexSet members;
  for (uint64_t e = 0; e < num_edges; ++e) {
    const uint64_t arity = ReadVarint(body);
    const uint64_t edge_label = ReadVarint(body);
    if (!body.ok() || arity == 0 || arity > num_vertices ||
        edge_label > ~Label{0}) {
      return Status::Corruption("bad hyperedge record");
    }
    members.clear();
    members.reserve(arity);
    uint64_t id = 0;
    for (uint64_t k = 0; k < arity; ++k) {
      // Sorted ascending on write, so ids travel as first + deltas.
      id = k == 0 ? ReadVarint(body) : id + ReadVarint(body);
      if (!body.ok() || id > ~VertexId{0}) {
        return Status::Corruption("truncated hyperedge");
      }
      members.push_back(static_cast<VertexId>(id));
    }
    incidences += arity;
    Result<EdgeId> added = h.AddEdge(std::move(members), edge_label);
    if (!added.ok()) return added.status();
    members = VertexSet();
  }
  if (incidences != num_incidences) {
    return Status::Corruption("incidence count mismatch");
  }
  if (!body.Exhausted()) {
    return Status::Corruption("trailing bytes in compressed body");
  }
  return h;
}

// Decodes either format version, dispatching on the magic.
template <typename Reader>
Result<Hypergraph> DecodeHypergraphFrom(Reader& r) {
  const uint32_t magic = r.template ReadValue<uint32_t>();
  if (!r.ok()) return Status::Corruption("truncated header");
  if (magic == kBinaryMagic) return DecodeHypergraphV1From(r);
  if (magic == kBinaryMagicV2) return DecodeHypergraphV2From(r);
  return Status::Corruption("bad magic (not an HGM1/HGM2 image)");
}

// Encodes one v1 hypergraph image into any sink exposing Append(ptr,
// bytes) — a std::string for wire payloads, the file directly for
// SaveHypergraph (no multi-GB intermediate image).
template <typename Sink>
void EncodeHypergraphTo(const Hypergraph& h, Sink& out) {
  const auto put = [&out](const auto value) {
    out.Append(&value, sizeof(value));
  };
  put(kBinaryMagic);
  put(static_cast<uint64_t>(h.NumVertices()));
  put(static_cast<uint64_t>(h.NumEdges()));
  put(h.NumIncidences());
  for (VertexId v = 0; v < h.NumVertices(); ++v) put(h.label(v));
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    const VertexSet& members = h.edge(e);
    put(static_cast<uint32_t>(members.size()));
    put(h.edge_label(e));
    out.Append(members.data(), members.size() * sizeof(VertexId));
  }
}

// Buffers compact-body bytes and flushes them as bounded chunks, each
// stored raw or LZSS-compressed — whichever is smaller — so the sink
// (file or string) only ever sees finished chunks and decoding never
// needs more than one chunk in memory.
template <typename Sink>
class ChunkedCompressSink {
 public:
  explicit ChunkedCompressSink(Sink& out) : out_(out) {}

  void Append(const void* data, size_t bytes) {
    buf_.append(static_cast<const char*>(data), bytes);
    while (buf_.size() >= kBinaryChunkBytes) {
      Flush(kBinaryChunkBytes);
    }
  }

  void Finish() {
    if (!buf_.empty()) Flush(buf_.size());
  }

 private:
  void Flush(size_t raw_bytes) {
    packed_.clear();
    LzssCompress(std::string_view(buf_.data(), raw_bytes), &packed_);
    const bool win = packed_.size() < raw_bytes;  // passthrough otherwise
    std::string header;
    AppendValue<uint32_t>(static_cast<uint32_t>(raw_bytes), &header);
    AppendValue<uint32_t>(
        static_cast<uint32_t>(win ? packed_.size() : raw_bytes), &header);
    AppendValue<uint8_t>(win ? 1 : 0, &header);
    out_.Append(header.data(), header.size());
    out_.Append(win ? packed_.data() : buf_.data(),
                win ? packed_.size() : raw_bytes);
    buf_.erase(0, raw_bytes);
  }

  Sink& out_;
  std::string buf_;
  std::string packed_;
};

// Encodes one v2 image: fixed header, then the chunked compact body.
template <typename Sink>
void EncodeHypergraphCompressedTo(const Hypergraph& h, Sink& out) {
  const auto put = [&out](const auto value) {
    out.Append(&value, sizeof(value));
  };
  put(kBinaryMagicV2);
  put(static_cast<uint64_t>(h.NumVertices()));
  put(static_cast<uint64_t>(h.NumEdges()));
  put(h.NumIncidences());

  ChunkedCompressSink<Sink> body(out);
  std::string varint;  // reused scratch for one value at a time
  const auto put_varint = [&body, &varint](uint64_t value) {
    varint.clear();
    AppendVarint(value, &varint);
    body.Append(varint.data(), varint.size());
  };
  for (VertexId v = 0; v < h.NumVertices(); ++v) put_varint(h.label(v));
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    const VertexSet& members = h.edge(e);
    put_varint(members.size());
    put_varint(h.edge_label(e));
    for (size_t k = 0; k < members.size(); ++k) {
      put_varint(k == 0 ? members[0] : members[k] - members[k - 1]);
    }
  }
  body.Finish();
}

struct StringSink {
  std::string* out;
  void Append(const void* data, size_t bytes) {
    out->append(static_cast<const char*>(data), bytes);
  }
};

}  // namespace

void AppendHypergraphBinary(const Hypergraph& h, std::string* out) {
  out->reserve(out->size() + 4 + 3 * 8 + h.NumVertices() * sizeof(Label) +
               h.NumEdges() * (4 + sizeof(Label)) +
               h.NumIncidences() * sizeof(VertexId));
  StringSink sink{out};
  EncodeHypergraphTo(h, sink);
}

void AppendHypergraphCompressed(const Hypergraph& h, std::string* out) {
  StringSink sink{out};
  EncodeHypergraphCompressedTo(h, sink);
}

Result<Hypergraph> DecodeHypergraphBinary(const void* data, size_t size) {
  ByteReader r(data, size);
  Result<Hypergraph> h = DecodeHypergraphFrom(r);
  if (h.ok() && r.remaining() != 0) {
    return Status::Corruption("trailing bytes after hypergraph");
  }
  return h;
}

Status SaveHypergraphBinary(const Hypergraph& h, const std::string& path,
                            bool compress) {
  BinaryFile f(path, "wb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  if (compress) {
    EncodeHypergraphCompressedTo(h, f);
  } else {
    EncodeHypergraphTo(h, f);
  }
  if (!f.ok()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Hypergraph> LoadHypergraphBinary(const std::string& path) {
  BinaryFile f(path, "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  Result<Hypergraph> h = DecodeHypergraphFrom(f);
  if (!h.ok()) {
    return Status(h.status().code(), path + ": " + h.status().message());
  }
  return h;
}

}  // namespace hgmatch
