#include "io/binary_format.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "io/byte_io.h"

namespace hgmatch {

namespace {

// Thin RAII + error-folding wrapper over std::FILE, mirroring ByteReader's
// sticky-failure contract so one decoder template (below) serves both the
// streaming file path and the in-memory wire path.
class BinaryFile {
 public:
  BinaryFile(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~BinaryFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr && !failed_; }

  // Files are trusted local input: no cheap size bound exists before
  // reading, so the hostile-header pre-check degrades to a no-op and
  // truncation surfaces through the sticky failure bit instead.
  uint64_t remaining() const { return ~uint64_t{0}; }

  void Append(const void* data, size_t bytes) {  // encoder-sink face
    if (!ok()) return;
    failed_ |= std::fwrite(data, 1, bytes, file_) != bytes;
  }

  void Read(void* data, size_t bytes) {
    if (!ok()) return;
    failed_ |= std::fread(data, 1, bytes, file_) != bytes;
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

// Decodes one hypergraph image from any sticky-failure reader exposing
// ok()/remaining()/Read()/ReadValue() — BinaryFile streams from disk
// without materialising the file, ByteReader decodes wire payloads.
template <typename Reader>
Result<Hypergraph> DecodeHypergraphFrom(Reader& r) {
  if (r.template ReadValue<uint32_t>() != kBinaryMagic || !r.ok()) {
    return Status::Corruption("bad magic (not an HGM1 image)");
  }
  const uint64_t num_vertices = r.template ReadValue<uint64_t>();
  const uint64_t num_edges = r.template ReadValue<uint64_t>();
  const uint64_t num_incidences = r.template ReadValue<uint64_t>();
  if (!r.ok()) return Status::Corruption("truncated header");
  // Every vertex costs one Label and every incidence one VertexId, so a
  // header whose counts exceed the bytes at hand is corrupt; checking here
  // stops a hostile header from driving the AddVertex loop below through
  // billions of iterations (the wire front end decodes untrusted bytes).
  if (num_vertices > r.remaining() / sizeof(Label) ||
      num_incidences > r.remaining() / sizeof(VertexId)) {
    return Status::Corruption("section counts exceed image size");
  }

  Hypergraph h;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    h.AddVertex(r.template ReadValue<Label>());
  }
  if (!r.ok()) return Status::Corruption("truncated label section");

  uint64_t incidences = 0;
  VertexSet members;
  for (uint64_t e = 0; e < num_edges; ++e) {
    const uint32_t arity = r.template ReadValue<uint32_t>();
    const Label edge_label = r.template ReadValue<Label>();
    if (!r.ok() || arity == 0 || arity > num_vertices) {
      return Status::Corruption("bad hyperedge record");
    }
    members.resize(arity);
    r.Read(members.data(), arity * sizeof(VertexId));
    if (!r.ok()) return Status::Corruption("truncated hyperedge");
    incidences += arity;
    Result<EdgeId> added = h.AddEdge(members, edge_label);
    if (!added.ok()) return added.status();
  }
  if (incidences != num_incidences) {
    return Status::Corruption("incidence count mismatch");
  }
  return h;
}

// Encodes one hypergraph image into any sink exposing Append(ptr, bytes) —
// a std::string for wire payloads, the file directly for SaveHypergraph
// (no multi-GB intermediate image).
template <typename Sink>
void EncodeHypergraphTo(const Hypergraph& h, Sink& out) {
  const auto put = [&out](const auto value) {
    out.Append(&value, sizeof(value));
  };
  put(kBinaryMagic);
  put(static_cast<uint64_t>(h.NumVertices()));
  put(static_cast<uint64_t>(h.NumEdges()));
  put(h.NumIncidences());
  for (VertexId v = 0; v < h.NumVertices(); ++v) put(h.label(v));
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    const VertexSet& members = h.edge(e);
    put(static_cast<uint32_t>(members.size()));
    put(h.edge_label(e));
    out.Append(members.data(), members.size() * sizeof(VertexId));
  }
}

struct StringSink {
  std::string* out;
  void Append(const void* data, size_t bytes) {
    out->append(static_cast<const char*>(data), bytes);
  }
};

}  // namespace

void AppendHypergraphBinary(const Hypergraph& h, std::string* out) {
  out->reserve(out->size() + 4 + 3 * 8 + h.NumVertices() * sizeof(Label) +
               h.NumEdges() * (4 + sizeof(Label)) +
               h.NumIncidences() * sizeof(VertexId));
  StringSink sink{out};
  EncodeHypergraphTo(h, sink);
}

Result<Hypergraph> DecodeHypergraphBinary(const void* data, size_t size) {
  ByteReader r(data, size);
  Result<Hypergraph> h = DecodeHypergraphFrom(r);
  if (h.ok() && r.remaining() != 0) {
    return Status::Corruption("trailing bytes after hypergraph");
  }
  return h;
}

Status SaveHypergraphBinary(const Hypergraph& h, const std::string& path) {
  BinaryFile f(path, "wb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  EncodeHypergraphTo(h, f);
  if (!f.ok()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Hypergraph> LoadHypergraphBinary(const std::string& path) {
  BinaryFile f(path, "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  Result<Hypergraph> h = DecodeHypergraphFrom(f);
  if (!h.ok()) {
    return Status(h.status().code(), path + ": " + h.status().message());
  }
  return h;
}

}  // namespace hgmatch
