#include "io/binary_format.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace hgmatch {

namespace {

// Thin RAII + error-folding wrapper over std::FILE.
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr && !failed_; }

  void Write(const void* data, size_t bytes) {
    if (!ok()) return;
    failed_ |= std::fwrite(data, 1, bytes, file_) != bytes;
  }

  void Read(void* data, size_t bytes) {
    if (!ok()) return;
    failed_ |= std::fread(data, 1, bytes, file_) != bytes;
  }

  template <typename T>
  void WriteValue(T value) {
    Write(&value, sizeof(T));
  }

  template <typename T>
  T ReadValue() {
    T value{};
    Read(&value, sizeof(T));
    return value;
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

}  // namespace

Status SaveHypergraphBinary(const Hypergraph& h, const std::string& path) {
  File f(path, "wb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  f.WriteValue<uint32_t>(kBinaryMagic);
  f.WriteValue<uint64_t>(h.NumVertices());
  f.WriteValue<uint64_t>(h.NumEdges());
  f.WriteValue<uint64_t>(h.NumIncidences());
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    f.WriteValue<Label>(h.label(v));
  }
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    const VertexSet& members = h.edge(e);
    f.WriteValue<uint32_t>(static_cast<uint32_t>(members.size()));
    f.WriteValue<Label>(h.edge_label(e));
    f.Write(members.data(), members.size() * sizeof(VertexId));
  }
  if (!f.ok()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Hypergraph> LoadHypergraphBinary(const std::string& path) {
  File f(path, "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  if (f.ReadValue<uint32_t>() != kBinaryMagic) {
    return Status::Corruption(path + ": bad magic (not an HGM1 file)");
  }
  const uint64_t num_vertices = f.ReadValue<uint64_t>();
  const uint64_t num_edges = f.ReadValue<uint64_t>();
  const uint64_t num_incidences = f.ReadValue<uint64_t>();
  if (!f.ok()) return Status::Corruption(path + ": truncated header");

  Hypergraph h;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    h.AddVertex(f.ReadValue<Label>());
  }
  if (!f.ok()) return Status::Corruption(path + ": truncated label section");

  uint64_t incidences = 0;
  VertexSet members;
  for (uint64_t e = 0; e < num_edges; ++e) {
    const uint32_t arity = f.ReadValue<uint32_t>();
    const Label edge_label = f.ReadValue<Label>();
    if (!f.ok() || arity == 0 || arity > num_vertices) {
      return Status::Corruption(path + ": bad hyperedge record");
    }
    members.resize(arity);
    f.Read(members.data(), arity * sizeof(VertexId));
    if (!f.ok()) return Status::Corruption(path + ": truncated hyperedge");
    incidences += arity;
    Result<EdgeId> added = h.AddEdge(members, edge_label);
    if (!added.ok()) return added.status();
  }
  if (incidences != num_incidences) {
    return Status::Corruption(path + ": incidence count mismatch");
  }
  return h;
}

}  // namespace hgmatch
