#include "io/writer.h"

#include <cstdio>

namespace hgmatch {

std::string FormatHypergraph(const Hypergraph& h) {
  std::string out;
  out.reserve(h.NumVertices() * 8 + h.NumIncidences() * 8);
  // Piecewise appends: `"v " + std::to_string(v) + ...` trips a GCC 12
  // -Wrestrict false positive (PR105651) under -O2 -Werror.
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    out += "v ";
    out += std::to_string(v);
    out += ' ';
    out += std::to_string(h.label(v));
    out += '\n';
  }
  for (EdgeId e = 0; e < h.NumEdges(); ++e) {
    if (h.edge_label(e) != 0) {
      out += "el ";
      out += std::to_string(h.edge_label(e));
    } else {
      out += "e";
    }
    for (VertexId v : h.edge(e)) {
      out += ' ';
      out += std::to_string(v);
    }
    out += "\n";
  }
  return out;
}

Status SaveHypergraph(const Hypergraph& h, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string text = FormatHypergraph(h);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace hgmatch
