#ifndef HGMATCH_IO_WRITER_H_
#define HGMATCH_IO_WRITER_H_

#include <string>

#include "core/hypergraph.h"
#include "util/status.h"

namespace hgmatch {

/// Serialises a hypergraph in the loader's text format (see io/loader.h).
std::string FormatHypergraph(const Hypergraph& h);

/// Writes FormatHypergraph(h) to `path`.
Status SaveHypergraph(const Hypergraph& h, const std::string& path);

}  // namespace hgmatch

#endif  // HGMATCH_IO_WRITER_H_
