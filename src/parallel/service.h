#ifndef HGMATCH_PARALLEL_SERVICE_H_
#define HGMATCH_PARALLEL_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "parallel/scheduler.h"
#include "util/status.h"

namespace hgmatch {

class MatchService;

namespace internal {
class ServiceImpl;
struct QueryRecord;
}  // namespace internal

/// Options of the streaming query service.
struct ServiceOptions {
  /// Pool configuration plus the per-query *default* timeout/limit
  /// (overridable per submission through SubmitOptions).
  ParallelOptions parallel;

  /// Order in which waiting queries are admitted when the admission window
  /// has a free slot (see AdmissionPolicy).
  AdmissionPolicy admission = AdmissionPolicy::kFifo;

  /// Admission window: at most this many queries in flight at once; the
  /// rest wait in admission-policy order. 0 = unlimited.
  uint32_t max_inflight_queries = 0;

  /// Queue-depth backpressure: upper bound on queries waiting for
  /// admission. When the window is full and this many queries already
  /// wait, Submit() resolves the new ticket immediately with
  /// QueryStatus::kRejected instead of queueing — the service's load
  /// shedding path (callers retry once the backlog drains). 0 = unbounded.
  uint32_t max_queued_queries = 0;

  /// Per-query fairness quota on live tasks (see SchedulerOptions).
  uint64_t task_quota = 0;

  /// Scatter-gather sharded execution: every accepted submission fans out
  /// as this many scan-sliced sub-queries (each runs the shared plan over
  /// one contiguous slice of the first step's signature table — see
  /// SubmitOptions::scan_slice), and their outcomes merge back into the
  /// one ticket the caller holds: counts/stats sum, admission/finish
  /// timestamps take min/max, and the most severe terminal status wins.
  /// The slices partition the embedding set exactly, so merged counts
  /// equal an unsharded run. Each sub-query inherits the parent's
  /// timeout; the embedding limit applies per slice, so a limit-bounded
  /// sharded query may overshoot by up to a factor of `shards` (the same
  /// per-worker overshoot the parallel executor already allows). Each
  /// sub-query occupies its own admission-window slot. 0 and 1 = off.
  uint32_t shards = 1;

  /// Upper bound on distinct compiled plans retained by the plan cache;
  /// 0 = unbounded (the historical behaviour). When an insertion pushes
  /// the cache past the bound, the least-recently-used entries with no
  /// in-flight submissions are evicted (plan retired and freed; the
  /// structure re-compiles on its next appearance). Entries with live
  /// submissions are never evicted, so the cache may transiently exceed
  /// the bound under heavy concurrency.
  size_t plan_cache_capacity = 0;

  /// Whole-service wall-clock budget in seconds, armed when the pool
  /// starts; <= 0 disables. Exists mainly for the RunBatch facade's
  /// whole-batch timeout; a long-lived service normally leaves it off.
  double run_timeout_seconds = 0;

  /// Batch mode (used by the RunBatch facade): do not start the worker
  /// pool at construction — collect every submission first and start the
  /// pool lazily at Drain()/Shutdown(). Queries submitted before the pool
  /// starts are seeded directly into the worker deques (the frozen-batch
  /// layout, where LIFO scheduling naturally runs the latest-seeded cheap
  /// queries first and every per-query deadline arms at the same instant),
  /// instead of streaming through the injection queue into an
  /// already-saturated pool. With defer_start, Ticket::Wait() blocks until
  /// something triggers the start — call Drain() or Shutdown() first.
  bool defer_start = false;

  /// Detect repeated queries across *all* submissions of this service's
  /// lifetime and reuse one compiled plan for all copies. A sink-less
  /// repeat under the same timeout/limit budgets additionally skips
  /// execution and mirrors the canonical copy's exact counts — unless the
  /// canonical is already known to have ended abnormally
  /// (timeout/cancelled), in which case the repeat executes on the shared
  /// plan (and, if accepted, becomes the structure's new canonical).
  ///
  /// Mirrors never fate-share: a mirror attached while its canonical is
  /// still running is *re-dispatched* as an independent execution on the
  /// shared compiled plan if the canonical ends cancelled or timed out —
  /// it keeps its own budgets, tenant WFQ charge, completion hook and
  /// trace span, and resolves with its own exact outcome; the first
  /// accepted re-dispatch takes over as canonical, so mirroring resumes
  /// for the structure. Cancelling a mirror resolves only that mirror
  /// (kCancelled) and never disturbs the canonical execution or sibling
  /// mirrors. The one remaining fate-share is Shutdown(): mirrors still
  /// attached when the pool seals resolve from their canonical's outcome,
  /// whatever it is, because nothing can execute any more.
  bool plan_cache = true;

  /// Key the plan cache by a canonical labelling of the query hypergraph
  /// (core/canonical.h) instead of its exact structure, so isomorphic
  /// repeats — renamed vertices, reordered hyperedges — also hit the cache
  /// and skip planning. Counts are isomorphism-invariant, so such repeats
  /// mirror exactly like exact ones; sink-ful isomorphic repeats compile a
  /// private plan (the embedding tuples must follow the submitted query's
  /// own edge numbering). Queries above the canonicaliser's size cutoff
  /// (or exhausting its search budget) fall back to the exact key. No
  /// effect without plan_cache.
  bool plan_cache_isomorphism = true;

  /// Cost-aware weighted-fair charging: under AdmissionPolicy::kWeightedFair
  /// each admission charges its tenant by the measured task count of the
  /// previous completed run of the same plan (tracked through the plan
  /// cache) instead of a flat 1 unit, so tenant shares hold in *work* units
  /// when query sizes are heterogeneous. First-seen plans charge 1. No
  /// effect without plan_cache or under other admission policies.
  bool cost_aware_wfq = true;

  /// Service-wide completion hook: invoked exactly once per submission —
  /// with its Ticket::id() and final outcome — at the moment the outcome
  /// finalises, whatever the terminal status (ok, timeout, limit,
  /// cancelled, rejected, plan-error) and whichever path produced it
  /// (executed on the pool, mirrored from a canonical, cancelled while
  /// queued, shed by backpressure, rejected after Shutdown). Fired after
  /// the outcome is observable through Ticket::TryGet() and with no
  /// service or scheduler lock that the read-side API needs, so the hook
  /// may TryGet other tickets. It runs on whichever thread finalised the
  /// outcome: a pool worker for executed queries (mirrors piggyback on
  /// their canonical's finish), or the caller of Submit()/Cancel() —
  /// before that call returns — for synchronously resolved submissions.
  /// Keep it fast and non-blocking, and do not call Submit/Wait/Cancel/
  /// Drain/Shutdown on this service from inside it. The wire front end
  /// (net/server.h) uses this hook to wake its serving loop the instant a
  /// query finishes instead of polling tickets. Runs after the per-submit
  /// SubmitOptions::completion hook of the same query, if any.
  std::function<void(uint64_t ticket_id, const QueryOutcome& outcome)>
      on_query_complete;
};

/// Live observability gauges of a running service, cheap enough to sample
/// on every stats request (a few atomic loads plus the scheduler's
/// amortised slot sweeps). The wire front end folds these into its
/// kStatsReply snapshot.
struct ServiceGauges {
  uint64_t finished = 0;        // outcomes finalised since construction
  uint64_t live_contexts = 0;   // queries whose execution state is live
  uint64_t retained_slots = 0;  // finished outcome slots not yet released
  uint64_t rejected = 0;        // shed by the max_queued_queries bound
};

/// Aggregate accounting of one service lifetime, returned by Shutdown().
struct ServiceReport {
  std::vector<WorkerReport> workers;  // size = pool threads
  uint64_t peak_task_bytes = 0;       // high-water mark of live task memory
  double seconds = 0;                 // construction -> Shutdown wall time

  uint64_t submitted = 0;        // every Submit() call
  uint64_t executed = 0;         // queries that actually ran on the pool
  uint64_t mirrored = 0;         // sink-less repeats resolved from the cache
  uint64_t redispatched = 0;     // mirrors re-executed after their canonical
                                 // ended cancelled/timed out (these moved
                                 // from mirrored to executed)
  uint64_t rejected = 0;         // shed by the max_queued_queries bound
  uint64_t plan_errors = 0;      // submissions that failed planning
  uint64_t plan_cache_hits = 0;  // submissions that reused a compiled plan
  uint64_t plan_cache_isomorphic_hits = 0;  // subset of plan_cache_hits from
                                            // renamed/reordered (non-exact)
                                            // repeats
  uint64_t unique_plans = 0;     // distinct plans compiled
};

/// Handle to one submitted query. Cheap to copy (shared state); the empty
/// (default-constructed) ticket is invalid. A ticket must not outlive its
/// MatchService unless the service was shut down first (Shutdown resolves
/// every outstanding ticket, after which Wait/TryGet only read stored
/// outcomes).
class Ticket {
 public:
  Ticket() = default;

  bool valid() const { return rec_ != nullptr; }

  /// Monotonic per-service submission id (0-based).
  uint64_t id() const;

  /// Planning/acceptance status: not-ok iff the query never executed
  /// because planning failed or the service was already shut down (the
  /// outcome then reports QueryStatus::kPlanError).
  const Status& status() const;

  /// Blocks until the query finishes (completion, timeout, limit,
  /// cancellation or rejection) and returns its outcome. The reference
  /// stays valid for the ticket's lifetime (the outcome store is
  /// shared-owned by the ticket itself). Thread-safe; may be called
  /// repeatedly. Completion-driven: the wait parks on a condition variable
  /// armed by the scheduler's completion hook, so it wakes the moment the
  /// outcome finalises — there is no polling anywhere on this path. The
  /// wait does not require the service to stay alive: a ticket whose
  /// service is torn down mid-wait (e.g. a catalog unload draining behind
  /// an in-flight query) still resolves and returns safely — only
  /// Cancel() needs the service itself.
  const QueryOutcome& Wait() const;

  /// Bounded Wait (request deadlines, e.g. the wire front end): blocks
  /// until the query finishes or `timeout_seconds` elapses, whichever is
  /// first. Returns the outcome, or null on expiry — expiry does NOT
  /// cancel the query; pair with Cancel() to give up on it. Thread-safe.
  const QueryOutcome* Wait(double timeout_seconds) const;

  /// Non-blocking Wait: null until the query has finished.
  const QueryOutcome* TryGet() const;

  /// Requests cancellation. A query waiting for admission (or a not yet
  /// resolved mirror) resolves immediately with QueryStatus::kCancelled; an
  /// in-flight query stops at the next task boundary, keeping the partial
  /// counts it completed. Cancelling a mirror detaches and resolves only
  /// that mirror — the canonical execution and sibling mirrors are
  /// untouched; cancelling a canonical re-dispatches its attached mirrors
  /// instead of dragging them down (see ServiceOptions::plan_cache).
  /// Returns false iff the query had already finished.
  bool Cancel() const;

 private:
  friend class MatchService;
  friend class internal::ServiceImpl;
  explicit Ticket(std::shared_ptr<internal::QueryRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<internal::QueryRecord> rec_;
};

/// One entry of MatchService::SubmitBatch(): a query plus its per-submit
/// options, owned by the batch (SubmitBatch moves the hypergraphs in, like
/// Submit()).
struct BatchSubmission {
  Hypergraph query;
  SubmitOptions options;
};

/// The SchedulerOptions a service-owned or shared pool is built from.
SchedulerOptions ToSchedulerOptions(const ServiceOptions& options);

/// A worker pool shared by several MatchServices — the execution
/// substrate of the graph catalog (serve/catalog.h), where admission
/// policies are already multi-tenant and one pool serves every hosted
/// graph: a data-less Scheduler whose submissions each carry their own
/// index. The pool starts at construction and joins at destruction; every
/// service bound to it must be shut down (or destroyed) first. The
/// `parallel` shape, admission policy, window/queue bounds and task quota
/// of `options` configure the pool; per-service fields (plan cache,
/// shards, hooks) are ignored here and read from each service's own
/// options.
class SchedulerPool {
 public:
  explicit SchedulerPool(const ServiceOptions& options);
  ~SchedulerPool();

  SchedulerPool(const SchedulerPool&) = delete;
  SchedulerPool& operator=(const SchedulerPool&) = delete;

  Scheduler& scheduler() { return *scheduler_; }
  uint32_t num_threads() const { return scheduler_->num_threads(); }

 private:
  std::unique_ptr<Scheduler> scheduler_;
};

/// A long-lived match-query service bound to one indexed data hypergraph:
/// the streaming front end of the shared scheduler core
/// (parallel/scheduler.h). Construction starts the worker pool; Submit()
/// plans the query (deduplicating structurally identical queries through a
/// service-lifetime plan cache), hands it to the scheduler under the
/// configured admission policy, and returns a Ticket immediately — queries
/// may be submitted from any thread while earlier ones are running.
/// Ticket::Wait()/TryGet() observe per-query outcomes as they finish;
/// Ticket::Cancel() stops one query without disturbing the rest; Drain()
/// waits for everything submitted so far; Shutdown() seals the service,
/// drains, joins the pool and returns the aggregate report.
///
/// Outcome delivery is completion-driven: the service hangs a completion
/// hook on every pool submission, and the moment the scheduler finalises a
/// query the hook copies the outcome into the ticket record, releases the
/// scheduler slot, resolves any mirrors attached to the record, wakes every
/// Ticket::Wait, and fires the user-visible completion hooks (per-submit
/// SubmitOptions::completion, then ServiceOptions::on_query_complete) —
/// exactly once per submission, on the thread that finalised the outcome.
///
/// Retention is bounded for a long-lived service: a query's heavy
/// execution state is recycled the moment it finishes, its scheduler slot
/// is recycled at that same instant (the completion hook resolves the
/// record eagerly — outcomes need not be retrieved for memory to stay
/// bounded), and resolved ticket records are swept opportunistically, so
/// memory tracks in-flight work plus the plan cache (one plan + canonical
/// outcome per distinct query structure), not the total ever submitted.
///
/// The batch engine (parallel/batch_runner.h RunBatch) is a thin facade
/// over this class: submit all, wait all, map outcomes to input order.
class MatchService {
 public:
  /// Starts the worker pool. `data` must outlive the service.
  MatchService(const IndexedHypergraph& data, const ServiceOptions& options);

  /// Binds the service to a shared pool instead of owning one: queries
  /// execute on `pool`'s workers, carrying `data` per submission. The
  /// pool's admission policy/window/queue bounds apply pool-wide; this
  /// service's `options` still govern its plan cache, sharding, default
  /// budgets and completion hooks (the `parallel` pool-shape fields and
  /// admission fields of `options` are ignored). `data` and `pool` must
  /// outlive the service; Shutdown() waits for this service's own queries
  /// only and leaves the pool running for its siblings (its report then
  /// carries service counters but no worker rows).
  MatchService(const IndexedHypergraph& data, SchedulerPool& pool,
               const ServiceOptions& options);

  /// Shuts down (cancelling nothing: outstanding queries finish first).
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Submits one query; the service takes ownership of the hypergraph (the
  /// compiled plan references it until the query finishes). Returns
  /// immediately. Thread-safe. After Shutdown(), submissions are rejected:
  /// the ticket resolves at once with kPlanError and a not-ok status().
  Ticket Submit(Hypergraph query, const SubmitOptions& options = {});

  /// Like Submit() but without taking ownership: `query` must stay alive
  /// until its ticket resolves. Used by RunBatch, which already owns the
  /// whole batch.
  Ticket SubmitBorrowed(const Hypergraph& query,
                        const SubmitOptions& options = {});

  /// Submits every entry under ONE admission pass: the internal lock is
  /// taken once for the whole batch, so N tiny queries (the wire front
  /// end's BATCH_SUBMIT frames) cost one lock round-trip and one record
  /// sweep instead of N. Semantically identical to calling Submit() once
  /// per entry in order — same ids, same per-entry plan cache/mirror/
  /// rejection behaviour, same completion hooks. Returns one ticket per
  /// entry, in input order. Thread-safe.
  std::vector<Ticket> SubmitBatch(std::vector<BatchSubmission> batch);

  /// Blocks until every query submitted so far has finished. The service
  /// stays up for further submissions. Thread-safe.
  void Drain();

  /// Seals the service (further Submit calls are rejected), waits for all
  /// outstanding queries, joins the pool and returns the aggregate report.
  /// Idempotent: later calls return the same report.
  ServiceReport Shutdown();

  /// Resolved pool size.
  uint32_t num_threads() const;

  /// Monotonic count of pool submissions whose outcome has finalised *and*
  /// become retrievable through Ticket::TryGet (any terminal status;
  /// mirrors resolved from their canonical and plan errors resolve without
  /// touching it, while a re-dispatched mirror is a pool submission of its
  /// own and counts when it resolves). One atomic load
  /// — a poller (the wire server's poll fallback) can skip scanning its
  /// tickets while this has not advanced, and an advance guarantees the
  /// corresponding TryGet calls succeed.
  uint64_t finished_queries() const;

  /// Live observability snapshot (see ServiceGauges). Thread-safe;
  /// non-const because sampling the scheduler's slot gauges performs its
  /// amortised sweeps.
  ServiceGauges Gauges();

 private:
  std::unique_ptr<internal::ServiceImpl> impl_;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_SERVICE_H_
