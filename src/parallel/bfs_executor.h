#ifndef HGMATCH_PARALLEL_BFS_EXECUTOR_H_
#define HGMATCH_PARALLEL_BFS_EXECUTOR_H_

#include <cstdint>

#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "parallel/executor.h"

namespace hgmatch {

/// Result of a BFS (level-synchronous) run.
struct BfsResult {
  MatchStats stats;
  /// Peak bytes of materialised intermediate embeddings (the sum of the
  /// current and next level buffers at their largest). This is the quantity
  /// that explodes with the result count in the paper's Fig 11.
  uint64_t peak_bytes = 0;
};

/// Executes a plan with BFS-style scheduling: every level's partial
/// embeddings are fully materialised before the next EXPAND begins
/// (the straightforward parallelisation the paper argues *against* in
/// Section VI.B; used as the memory baseline of Exp-5). Parallelism within
/// a level uses the same number of threads as `options.num_threads`.
/// `options.limit` and `options.timeout_seconds` are honoured between rows.
BfsResult ExecutePlanBfs(const IndexedHypergraph& data, const QueryPlan& plan,
                         const ParallelOptions& options,
                         EmbeddingSink* sink = nullptr);

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_BFS_EXECUTOR_H_
