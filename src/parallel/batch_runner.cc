#include "parallel/batch_runner.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "core/candidates.h"
#include "core/matching_order.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

// Shared per-query state of a batch run. Tasks are tagged with their
// context, so counters, limits and timeouts stay exact per query even while
// tasks of different queries mix in the same deques.
struct QueryContext {
  uint32_t index = 0;
  QueryPlan plan;
  const EdgeSet* scan_table = nullptr;  // first-step signature table
  Deadline deadline;
  EmbeddingSink* sink = nullptr;
  std::mutex sink_mutex;
  std::atomic<uint64_t> emitted{0};
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> timed_out{false};
  std::atomic<bool> limit_hit{false};
  // Written exactly once, by the worker that retires the query's last task
  // (pending can only reach zero once — children are spawned before their
  // parent task is retired).
  double finish_seconds = 0;
  bool seeded = false;
};

// The scheduling unit of the batch engine: a Task (parallel/task.h) plus
// the owning query context. Same single-allocation layout.
struct BatchTask {
  QueryContext* ctx;
  Task::Kind kind;
  uint32_t depth;    // EXPAND: matched hyperedges; SCAN: 0
  uint32_t scan_lo;  // SCAN: range [scan_lo, scan_hi) into ctx->scan_table
  uint32_t scan_hi;
  EdgeId edges[];  // EXPAND: the partial embedding (depth entries)

  size_t SizeBytes() const { return sizeof(BatchTask) + sizeof(EdgeId) * depth; }

  static BatchTask* NewScan(QueryContext* ctx, uint32_t lo, uint32_t hi) {
    BatchTask* t = static_cast<BatchTask*>(::malloc(sizeof(BatchTask)));
    if (t == nullptr) ::abort();  // allocation failure is not recoverable
    t->ctx = ctx;
    t->kind = Task::Kind::kScan;
    t->depth = 0;
    t->scan_lo = lo;
    t->scan_hi = hi;
    return t;
  }

  static BatchTask* NewExpand(QueryContext* ctx, const EdgeId* prefix,
                              uint32_t prefix_len, EdgeId next) {
    BatchTask* t = static_cast<BatchTask*>(
        ::malloc(sizeof(BatchTask) + sizeof(EdgeId) * (prefix_len + 1)));
    if (t == nullptr) ::abort();  // allocation failure is not recoverable
    t->ctx = ctx;
    t->kind = Task::Kind::kExpand;
    t->depth = prefix_len + 1;
    t->scan_lo = t->scan_hi = 0;
    for (uint32_t i = 0; i < prefix_len; ++i) t->edges[i] = prefix[i];
    t->edges[prefix_len] = next;
    return t;
  }

  static void Free(BatchTask* t) { ::free(t); }
};

// Multi-query work-stealing engine: the Section VI.C scheduler generalised
// to many concurrent plans over one pool.
class BatchEngine {
 public:
  BatchEngine(const IndexedHypergraph& data, size_t num_queries,
              const BatchOptions& options)
      : data_(data),
        options_(options),
        batch_deadline_(Deadline::After(options.batch_timeout_seconds)),
        num_threads_(options.parallel.num_threads != 0
                         ? options.parallel.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {
    contexts_.reserve(num_queries);
  }

  // Plans and admits one query; returns its planning status.
  Status Admit(const Hypergraph& query, EmbeddingSink* sink) {
    auto ctx = std::make_unique<QueryContext>();
    ctx->index = static_cast<uint32_t>(contexts_.size());
    ctx->sink = sink;
    ctx->deadline = Deadline::After(options_.parallel.timeout_seconds);
    Result<QueryPlan> plan = BuildQueryPlan(query, data_);
    if (!plan.ok()) {
      ctx->stop.store(true, std::memory_order_relaxed);
      contexts_.push_back(std::move(ctx));
      return plan.status();
    }
    ctx->plan = std::move(plan.value());
    const Partition* first = data_.FindPartition(ctx->plan.steps[0].signature);
    if (first != nullptr && !first->edges().empty()) {
      ctx->scan_table = &first->edges();
    }
    contexts_.push_back(std::move(ctx));
    return Status::OK();
  }

  BatchResult Run() {
    BatchResult result;
    result.queries.resize(contexts_.size());

    workers_.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      workers_.push_back(std::make_unique<Worker>(
          contexts_.size(), i, options_.parallel.seed + i));
    }

    // Seed: split every query's first-step signature table into one SCAN
    // range per worker, rotating the assignment by query index so small
    // batches still spread across the pool (the work-stealing pass then
    // rebalances dynamically).
    for (auto& ctx : contexts_) {
      if (ctx->scan_table == nullptr) continue;
      ctx->seeded = true;
      const uint64_t total = ctx->scan_table->size();
      const uint64_t chunk = (total + num_threads_ - 1) / num_threads_;
      for (uint32_t w = 0; w < num_threads_; ++w) {
        const uint64_t lo = static_cast<uint64_t>(w) * chunk;
        if (lo >= total) break;
        const uint64_t hi = std::min<uint64_t>(lo + chunk, total);
        Worker* owner = workers_[(w + ctx->index) % num_threads_].get();
        Spawn(owner, BatchTask::NewScan(ctx.get(), static_cast<uint32_t>(lo),
                                        static_cast<uint32_t>(hi)));
      }
    }

    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      threads.emplace_back([this, i] { WorkerLoop(workers_[i].get()); });
    }
    for (auto& t : threads) t.join();

    for (size_t q = 0; q < contexts_.size(); ++q) {
      QueryContext* ctx = contexts_[q].get();
      MatchStats stats;
      for (auto& w : workers_) stats += w->query_stats[q];
      stats.timed_out = ctx->timed_out.load(std::memory_order_relaxed);
      stats.limit_hit = ctx->limit_hit.load(std::memory_order_relaxed);
      stats.seconds = ctx->seeded ? ctx->finish_seconds : 0;
      result.queries[q].stats = stats;
    }

    for (auto& w : workers_) {
      for (const MatchStats& s : w->query_stats) w->report.stats += s;
      result.workers.push_back(std::move(w->report));
    }
    for (const BatchQueryResult& q : result.queries) result.total += q.stats;
    result.peak_task_bytes = memory_.peak_bytes();
    result.seconds = wall_.ElapsedSeconds();
    return result;
  }

 private:
  struct Worker {
    Worker(size_t num_queries, uint32_t id, uint64_t seed)
        : id(id), rng(seed), query_stats(num_queries),
          expanders(num_queries) {}

    uint32_t id;
    WorkStealingDeque<BatchTask*> deque;
    Rng rng;
    std::vector<EdgeId> valid;      // Expand() output buffer
    std::vector<EdgeId> embedding;  // SINK copy buffer
    std::vector<MatchStats> query_stats;                // indexed by query
    std::vector<std::unique_ptr<Expander>> expanders;   // lazily built
    WorkerReport report;
    uint64_t poll_counter = 0;
  };

  Expander& ExpanderFor(Worker* w, QueryContext* ctx) {
    auto& slot = w->expanders[ctx->index];
    if (slot == nullptr) slot = std::make_unique<Expander>(data_, ctx->plan);
    return *slot;
  }

  void Spawn(Worker* w, BatchTask* t) {
    memory_.OnAlloc(t->SizeBytes());
    t->ctx->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++w->report.tasks_spawned;
    w->deque.Push(t);
  }

  void Finish(BatchTask* t) {
    QueryContext* ctx = t->ctx;
    memory_.OnFree(t->SizeBytes());
    BatchTask::Free(t);
    if (ctx->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ctx->finish_seconds = wall_.ElapsedSeconds();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void PollDeadlines(Worker* w, QueryContext* ctx) {
    if (++w->poll_counter < 1024) return;
    w->poll_counter = 0;
    if (ctx->deadline.Expired()) {
      ctx->timed_out.store(true, std::memory_order_relaxed);
      ctx->stop.store(true, std::memory_order_relaxed);
    }
    if (batch_deadline_.Expired() &&
        !batch_expired_.exchange(true, std::memory_order_relaxed)) {
      for (auto& c : contexts_) {
        if (c->pending.load(std::memory_order_acquire) > 0) {
          c->timed_out.store(true, std::memory_order_relaxed);
        }
        c->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  void EmitEmbedding(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                     uint32_t prefix_len, EdgeId last) {
    ++w->query_stats[ctx->index].embeddings;
    if (ctx->sink != nullptr) {
      if (w->embedding.size() < static_cast<size_t>(prefix_len) + 1) {
        w->embedding.resize(prefix_len + 1);
      }
      for (uint32_t i = 0; i < prefix_len; ++i) w->embedding[i] = prefix[i];
      w->embedding[prefix_len] = last;
      std::lock_guard<std::mutex> lock(ctx->sink_mutex);
      ctx->sink->Emit(w->embedding.data(), prefix_len + 1);
    }
    if (options_.parallel.limit != 0) {
      const uint64_t total =
          ctx->emitted.fetch_add(1, std::memory_order_relaxed) + 1;
      if (total >= options_.parallel.limit) {
        ctx->limit_hit.store(true, std::memory_order_relaxed);
        ctx->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  void ProcessChild(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                    uint32_t prefix_len, EdgeId c) {
    if (prefix_len + 1 == ctx->plan.NumSteps()) {
      EmitEmbedding(w, ctx, prefix, prefix_len, c);
    } else {
      Spawn(w, BatchTask::NewExpand(ctx, prefix, prefix_len, c));
    }
  }

  void ExecuteScan(Worker* w, BatchTask* t) {
    QueryContext* ctx = t->ctx;
    uint32_t lo = t->scan_lo;
    uint32_t hi = t->scan_hi;
    while (hi - lo > options_.parallel.scan_grain) {
      const uint32_t mid = lo + (hi - lo) / 2;
      Spawn(w, BatchTask::NewScan(ctx, mid, hi));
      hi = mid;
    }
    for (uint32_t i = lo;
         i < hi && !ctx->stop.load(std::memory_order_relaxed); ++i) {
      ProcessChild(w, ctx, nullptr, 0, (*ctx->scan_table)[i]);
      PollDeadlines(w, ctx);
    }
  }

  void ExecuteExpand(Worker* w, BatchTask* t) {
    QueryContext* ctx = t->ctx;
    ExpanderFor(w, ctx).Expand(t->edges, t->depth, &w->valid,
                               &w->query_stats[ctx->index]);
    for (EdgeId c : w->valid) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, t->edges, t->depth, c);
    }
    PollDeadlines(w, ctx);
  }

  void Execute(Worker* w, BatchTask* t) {
    if (t->ctx->stop.load(std::memory_order_relaxed)) return;  // drop
    Timer busy;
    if (t->kind == Task::Kind::kScan) {
      ExecuteScan(w, t);
    } else {
      ExecuteExpand(w, t);
    }
    ++w->report.tasks_executed;
    w->report.busy_seconds += busy.ElapsedSeconds();
  }

  // Steals up to half of a random victim's queue (Section VI.C).
  BatchTask* TrySteal(Worker* w) {
    if (num_threads_ < 2) return nullptr;
    for (uint32_t attempt = 0; attempt < 2 * num_threads_; ++attempt) {
      const uint32_t victim_id =
          static_cast<uint32_t>(w->rng.NextBounded(num_threads_));
      if (victim_id == w->id) continue;
      Worker* victim = workers_[victim_id].get();
      BatchTask* first = nullptr;
      if (!victim->deque.Steal(&first)) continue;
      ++w->report.steals;
      int64_t extra = victim->deque.SizeApprox() / 2;
      BatchTask* t = nullptr;
      while (extra-- > 0 && victim->deque.Steal(&t)) {
        w->deque.Push(t);
      }
      return first;
    }
    return nullptr;
  }

  void WorkerLoop(Worker* w) {
    while (true) {
      if (pending_.load(std::memory_order_acquire) == 0) break;
      BatchTask* t = nullptr;
      if (w->deque.Pop(&t)) {
        Execute(w, t);
        Finish(t);
      } else if (options_.parallel.work_stealing &&
                 (t = TrySteal(w)) != nullptr) {
        Execute(w, t);
        Finish(t);
      } else {
        std::this_thread::yield();
      }
    }
  }

  const IndexedHypergraph& data_;
  const BatchOptions& options_;
  const Deadline batch_deadline_;
  const uint32_t num_threads_;
  Timer wall_;

  std::vector<std::unique_ptr<QueryContext>> contexts_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> batch_expired_{false};
  TaskMemoryTracker memory_;
};

}  // namespace

BatchResult RunBatch(const IndexedHypergraph& data,
                     const std::vector<Hypergraph>& queries,
                     const BatchOptions& options,
                     const std::vector<EmbeddingSink*>* sinks) {
  BatchEngine engine(data, queries.size(), options);
  std::vector<Status> planning(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EmbeddingSink* sink =
        (sinks != nullptr && i < sinks->size()) ? (*sinks)[i] : nullptr;
    planning[i] = engine.Admit(queries[i], sink);
  }
  BatchResult result = engine.Run();
  result.completed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    result.queries[i].status = std::move(planning[i]);
    const BatchQueryResult& q = result.queries[i];
    if (q.status.ok() && !q.stats.timed_out && !q.stats.limit_hit) {
      ++result.completed;
    }
  }
  return result;
}

}  // namespace hgmatch
