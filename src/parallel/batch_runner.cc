#include "parallel/batch_runner.h"

#include <vector>

#include "parallel/service.h"

namespace hgmatch {

// The batch engine is a compatibility facade over the streaming query
// service: one private MatchService per call (so plan-cache statistics are
// batch-scoped), submit every query in input order, wait for all of them,
// map outcomes back to input order. Admission order, plan caching,
// sink-less repeat mirroring and per-query exactness all live in the
// service/scheduler layers.
BatchResult RunBatch(const IndexedHypergraph& data,
                     const std::vector<Hypergraph>& queries,
                     const BatchOptions& options,
                     const std::vector<EmbeddingSink*>* sinks,
                     const std::vector<SubmitOptions>* submit) {
  ServiceOptions service_options;
  service_options.parallel = options.parallel;
  service_options.admission = options.admission;
  service_options.max_inflight_queries = options.max_inflight_queries;
  service_options.task_quota = options.task_quota;
  service_options.run_timeout_seconds = options.batch_timeout_seconds;
  service_options.plan_cache = options.plan_cache;
  service_options.plan_cache_isomorphism = options.plan_cache_isomorphism;
  // Frozen-batch mode: collect the whole batch before the pool starts, so
  // the pre-start seeds spread directly over the worker deques and every
  // per-query deadline arms when execution actually begins — the batch
  // engine's historical timing semantics.
  service_options.defer_start = true;
  MatchService service(data, service_options);

  std::vector<Ticket> tickets;
  tickets.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SubmitOptions so =
        (submit != nullptr && i < submit->size()) ? (*submit)[i]
                                                  : SubmitOptions{};
    if (sinks != nullptr && i < sinks->size()) so.sink = (*sinks)[i];
    tickets.push_back(service.SubmitBorrowed(queries[i], so));
  }
  const ServiceReport sr = service.Shutdown();  // drains and joins

  BatchResult result;
  result.queries.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    BatchQueryResult& q = result.queries[i];
    const QueryOutcome& outcome = tickets[i].Wait();  // resolved: pure read
    q.status = tickets[i].status();
    q.outcome = outcome.status;
    q.mirrored = outcome.mirrored;
    if (q.status.ok()) {
      q.stats = outcome.stats;
      q.admit_seconds = outcome.admit_seconds;
    }
    if (q.status.ok() && !q.stats.timed_out && !q.stats.limit_hit &&
        q.outcome != QueryStatus::kCancelled &&
        q.outcome != QueryStatus::kRejected) {
      ++result.completed;
    }
    result.total += q.stats;
  }
  result.workers = sr.workers;
  result.peak_task_bytes = sr.peak_task_bytes;
  result.seconds = sr.seconds;
  result.executed = sr.executed;
  result.mirrored = sr.mirrored;
  result.plan_cache_hits = sr.plan_cache_hits;
  result.plan_cache_isomorphic_hits = sr.plan_cache_isomorphic_hits;
  result.redispatched = sr.redispatched;
  result.unique_plans = sr.unique_plans;
  return result;
}

}  // namespace hgmatch
