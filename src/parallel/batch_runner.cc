#include "parallel/batch_runner.h"

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "parallel/scheduler.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNotScheduled = 0xffffffffu;

// Canonical cache key of a query hypergraph: the exact vertex structure
// (vertex labels, then each hyperedge's arity, vertex ids and edge label),
// so key equality is exactly structural identity — two queries with equal
// keys have identical vertex labels and identical hyperedges over identical
// vertex ids, and therefore compile to interchangeable plans.
std::string QueryCacheKey(const Hypergraph& q) {
  std::string key;
  key.reserve(16 + q.NumVertices() * sizeof(Label) +
              q.NumIncidences() * sizeof(VertexId) +
              q.NumEdges() * (sizeof(Label) + sizeof(uint64_t)));
  auto append = [&key](const void* data, size_t bytes) {
    key.append(static_cast<const char*>(data), bytes);
  };
  const uint64_t nv = q.NumVertices();
  append(&nv, sizeof(nv));
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    const Label l = q.label(v);
    append(&l, sizeof(l));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const VertexSet& vs = q.edge(e);
    const uint64_t arity = vs.size();
    append(&arity, sizeof(arity));
    append(vs.data(), vs.size() * sizeof(VertexId));
    const Label el = q.edge_label(e);
    append(&el, sizeof(el));
  }
  return key;
}

// Bookkeeping of one input query through the admission layer.
struct QuerySlot {
  Status status;                          // planning outcome
  uint32_t sched_index = kNotScheduled;   // index into scheduler outcomes
  uint32_t mirror_of = kNotScheduled;     // input index of canonical copy
};

}  // namespace

BatchResult RunBatch(const IndexedHypergraph& data,
                     const std::vector<Hypergraph>& queries,
                     const BatchOptions& options,
                     const std::vector<EmbeddingSink*>* sinks) {
  SchedulerOptions sched_options;
  sched_options.parallel = options.parallel;
  sched_options.batch_timeout_seconds = options.batch_timeout_seconds;
  sched_options.max_inflight_queries = options.max_inflight_queries;
  sched_options.task_quota = options.task_quota;
  Scheduler scheduler(data, sched_options);

  BatchResult result;
  result.queries.resize(queries.size());

  // Admission: plan every query, detecting repeated queries through the
  // plan cache. A repeat reuses the canonical copy's compiled plan; when it
  // has no sink of its own it is not even submitted — its exact counts are
  // mirrored from the canonical execution afterwards.
  std::vector<QuerySlot> slots(queries.size());
  std::vector<std::unique_ptr<QueryPlan>> plans;    // owned, stable addresses
  std::vector<const QueryPlan*> plan_of(queries.size(), nullptr);
  std::unordered_map<std::string, uint32_t> cache;  // key -> canonical input
  for (size_t i = 0; i < queries.size(); ++i) {
    EmbeddingSink* sink =
        (sinks != nullptr && i < sinks->size()) ? (*sinks)[i] : nullptr;
    std::string key;
    if (options.plan_cache) {
      key = QueryCacheKey(queries[i]);
      auto it = cache.find(key);
      if (it != cache.end()) {
        const uint32_t canonical = it->second;
        ++result.plan_cache_hits;
        plan_of[i] = plan_of[canonical];
        if (sink == nullptr) {
          slots[i].mirror_of = canonical;
        } else {
          // The sink must observe this copy's own embeddings, so the copy
          // executes — but on the shared compiled plan.
          slots[i].sched_index = scheduler.Submit(plan_of[i], sink);
        }
        continue;
      }
    }
    Result<QueryPlan> plan = BuildQueryPlan(queries[i], data);
    if (!plan.ok()) {
      slots[i].status = plan.status();
      continue;
    }
    plans.push_back(std::make_unique<QueryPlan>(std::move(plan.value())));
    plan_of[i] = plans.back().get();
    if (options.plan_cache) {
      cache.emplace(std::move(key), static_cast<uint32_t>(i));
    }
    slots[i].sched_index = scheduler.Submit(plan_of[i], sink);
  }
  result.unique_plans = plans.size();

  SchedulerReport report = scheduler.Run();

  for (size_t i = 0; i < queries.size(); ++i) {
    BatchQueryResult& q = result.queries[i];
    q.status = std::move(slots[i].status);
    const uint32_t sched = slots[i].mirror_of != kNotScheduled
                               ? slots[slots[i].mirror_of].sched_index
                               : slots[i].sched_index;
    if (sched != kNotScheduled) {
      const QueryOutcome& outcome = report.queries[sched];
      q.stats = outcome.stats;
      q.admit_seconds = outcome.admit_seconds;
    }
    if (q.status.ok() && !q.stats.timed_out && !q.stats.limit_hit) {
      ++result.completed;
    }
    result.total += q.stats;
  }
  result.workers = std::move(report.workers);
  result.peak_task_bytes = report.peak_task_bytes;
  result.seconds = report.seconds;
  return result;
}

}  // namespace hgmatch
