#ifndef HGMATCH_PARALLEL_EXECUTOR_H_
#define HGMATCH_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the parallel execution engine (Section VI).
struct ParallelOptions {
  /// Worker threads in the pool; 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;

  /// Dynamic work stealing (Section VI.C). Disabling it reproduces the
  /// static "assign each thread an equal share of the firstly matched
  /// hyperedges" baseline the paper calls HGMatch-NOSTL (Exp-6).
  bool work_stealing = true;

  /// Maximum number of table rows a SCAN task processes before splitting
  /// itself (range splitting keeps the seeding memory bounded).
  uint32_t scan_grain = 64;

  /// Per-query wall-clock timeout in seconds; <= 0 disables.
  double timeout_seconds = 0;

  /// Stop after (at least) this many embeddings; 0 = unlimited. Because
  /// workers run concurrently the final count may slightly overshoot.
  uint64_t limit = 0;

  /// Random seed for steal-victim selection (results are unaffected).
  uint64_t seed = 0x5eed;
};

/// Per-worker execution report (Exp-6 / Fig 12 uses busy_seconds).
struct WorkerReport {
  double busy_seconds = 0;      // time spent executing tasks
  uint64_t tasks_executed = 0;  // tasks run by this worker
  uint64_t tasks_spawned = 0;   // tasks this worker pushed
  uint64_t steals = 0;          // successful steals by this worker
  MatchStats stats;             // per-worker counters (embeddings etc.)
};

/// Aggregate result of a parallel run.
struct ParallelResult {
  MatchStats stats;                   // aggregated over workers
  std::vector<WorkerReport> workers;  // size = num_threads
  uint64_t peak_task_bytes = 0;       // high-water mark of live task memory
};

/// Runs a compiled plan on the task-based scheduler (Section VI.B) with
/// dynamic work stealing (Section VI.C): each worker owns a Chase–Lev deque,
/// schedules LIFO, and steals up to half of a random victim's queue when
/// idle. This is a thin facade over the shared scheduler core
/// (parallel/scheduler.h) — a single query runs as a batch of one, so every
/// deque/steal/deadline behaviour is identical to the batch engine's
/// (parallel/batch_runner.h) by construction. `sink` may be null (count
/// only); when non-null, Emit calls are serialised by the engine, so any
/// sink works but heavy sinks limit scalability — the experiments count,
/// matching the paper's metric. `stats.timed_out` is only set when the
/// deadline fired AND some work was actually dropped; a run whose final
/// tasks complete their counts despite an expired deadline reports exact
/// results.
ParallelResult ExecutePlanParallel(const IndexedHypergraph& data,
                                   const QueryPlan& plan,
                                   const ParallelOptions& options,
                                   EmbeddingSink* sink = nullptr);

/// Convenience wrapper: plan (Algorithm 3) + ExecutePlanParallel.
Result<ParallelResult> MatchParallel(const IndexedHypergraph& data,
                                     const Hypergraph& query,
                                     const ParallelOptions& options = {},
                                     EmbeddingSink* sink = nullptr);

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_EXECUTOR_H_
