#ifndef HGMATCH_PARALLEL_SCHEDULER_H_
#define HGMATCH_PARALLEL_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "parallel/executor.h"

namespace hgmatch {

/// Options of the shared scheduler core. `parallel` carries the pool shape
/// (threads, stealing, scan grain, seed) and the *per-query* timeout/limit;
/// the remaining fields only matter for multi-query runs and are no-ops for
/// a batch of one.
struct SchedulerOptions {
  /// Pool configuration plus per-query timeout/limit. The per-query timeout
  /// is measured from the query's *admission* (the instant its SCAN ranges
  /// are seeded), not from Run() start, so a query waiting in the admission
  /// queue does not burn its own budget.
  ParallelOptions parallel;

  /// Whole-run wall-clock timeout in seconds; <= 0 disables. When it fires,
  /// every unfinished query is stopped; a query is reported `timed_out` only
  /// if any of its work was actually dropped (a query whose final mid-flight
  /// task completes its counts is not marked timed out).
  double batch_timeout_seconds = 0;

  /// Admission window: at most this many queries have live tasks at any
  /// instant; the rest wait in submission order and are admitted as slots
  /// free up. 0 = unlimited (every query is admitted up front). A window of
  /// 1 serialises the queries while keeping intra-query parallelism.
  uint32_t max_inflight_queries = 0;

  /// Per-query fairness quota: when a query already has at least this many
  /// live (queued or executing) tasks, new expansions of that query are run
  /// inline depth-first instead of being queued, so one expensive query
  /// cannot flood the deques and starve the rest of a batch. 0 = off.
  uint64_t task_quota = 0;
};

/// Outcome of one submitted query. `stats` is exactly comparable to a
/// standalone sequential run of the same plan: `seconds` measures admission
/// -> last task retired, `timed_out` is set only when work was dropped.
struct QueryOutcome {
  MatchStats stats;

  /// Seconds from Run() start until this query was admitted. Always the
  /// wall clock at admission, so approximately — not exactly — 0 when the
  /// admission window is unlimited (every query is admitted before the
  /// pool threads start); do not test it with == 0.
  double admit_seconds = 0;
};

/// Aggregate outcome of one scheduler run.
struct SchedulerReport {
  std::vector<QueryOutcome> queries;  // submission order
  std::vector<WorkerReport> workers;  // size = pool threads
  uint64_t peak_task_bytes = 0;       // high-water mark of live task memory
  double seconds = 0;                 // whole-run wall time
};

/// The scheduler core shared by the single-query executor
/// (parallel/executor.h) and the batch engine (parallel/batch_runner.h):
/// one worker pool where each worker owns a Chase-Lev deque, schedules LIFO
/// and steals up to half of a random victim's queue when idle
/// (Section VI.B/VI.C), generalised to many concurrent query plans by
/// tagging every task with its query context. It owns the worker pool, the
/// deques, the steal policy, per-query deadlines/limits, the admission
/// window and per-worker stats accumulation; the two public engines are
/// thin facades over it. Queries admitted mid-run are seeded through a
/// shared injection queue that idle workers drain, so a newly admitted
/// query spreads over the pool even with work stealing disabled.
///
/// Per-worker state is sparse: a worker only materialises stats slots and
/// expanders for the queries (respectively plans) whose tasks it actually
/// executed, so memory is O(threads x touched-queries), not
/// O(threads x submitted-queries) — thousand-query batches stay cheap.
///
/// Usage: construct, Submit() each compiled plan once, then Run() exactly
/// once. Plans must stay alive until Run() returns; submitting the same
/// plan pointer for several queries is allowed (the batch engine's plan
/// cache does this) and shares per-worker expanders between them.
class Scheduler {
 public:
  Scheduler(const IndexedHypergraph& data, const SchedulerOptions& options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers one query for the next Run(). `plan` must outlive Run();
  /// `sink` may be null (count only) — Emit calls are serialised per query.
  /// Returns the query's index into SchedulerReport::queries.
  uint32_t Submit(const QueryPlan* plan, EmbeddingSink* sink = nullptr);

  /// Executes every submitted query to completion (or timeout/limit) and
  /// returns the per-query outcomes. Call exactly once.
  SchedulerReport Run();

  /// Resolved pool size (`parallel.num_threads`, with 0 mapped to
  /// std::thread::hardware_concurrency()).
  uint32_t num_threads() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_SCHEDULER_H_
