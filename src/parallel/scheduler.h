#ifndef HGMATCH_PARALLEL_SCHEDULER_H_
#define HGMATCH_PARALLEL_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "obs/trace.h"
#include "parallel/executor.h"
#include "parallel/submit_options.h"

namespace hgmatch {

/// Options of the shared scheduler core. `parallel` carries the pool shape
/// (threads, stealing, scan grain, seed) and the *per-query* default
/// timeout/limit; the remaining fields only matter for multi-query runs and
/// are no-ops for a batch of one.
struct SchedulerOptions {
  /// Pool configuration plus per-query default timeout/limit. The per-query
  /// timeout is measured from the query's *admission* (the instant its SCAN
  /// ranges are seeded), not from submission, so a query waiting in the
  /// admission queue does not burn its own budget.
  ParallelOptions parallel;

  /// Whole-run wall-clock timeout in seconds; <= 0 disables. Armed when the
  /// pool starts. When it fires, every unfinished query is stopped; a query
  /// is reported `timed_out` only if any of its work was actually dropped
  /// (a query whose final mid-flight task completes its counts is not
  /// marked timed out).
  double batch_timeout_seconds = 0;

  /// Admission window: at most this many queries have live tasks at any
  /// instant; the rest wait in admission-policy order and are admitted as
  /// slots free up. 0 = unlimited (every query is admitted on submission).
  /// A window of 1 serialises the queries while keeping intra-query
  /// parallelism.
  uint32_t max_inflight_queries = 0;

  /// Order in which waiting queries are admitted (see AdmissionPolicy).
  AdmissionPolicy admission = AdmissionPolicy::kFifo;

  /// Queue-depth backpressure: upper bound on queries *waiting* for
  /// admission while the pool is running. A Submit() that arrives when the
  /// admission window is full and this many queries are already waiting
  /// resolves immediately with QueryStatus::kRejected instead of queueing
  /// (load shedding — the caller may retry once the backlog drains).
  /// 0 = unbounded. Queries submitted before Start() (the frozen-batch
  /// collection phase) are never shed.
  uint32_t max_queued_queries = 0;

  /// Per-query fairness quota: when a query already has at least this many
  /// live (queued or executing) tasks, new expansions of that query are run
  /// inline depth-first instead of being queued, so one expensive query
  /// cannot flood the deques and starve the rest of a batch. 0 = off.
  uint64_t task_quota = 0;
};

/// Outcome of one submitted query. `stats` is exactly comparable to a
/// standalone sequential run of the same plan: `stats.seconds` measures
/// admission -> last task retired, `timed_out` is set only when work was
/// dropped.
struct QueryOutcome {
  /// Terminal state; see QueryStatus. The scheduler never reports
  /// kPlanError (it only sees compiled plans) — the service layer does.
  QueryStatus status = QueryStatus::kOk;

  /// Set by the service layer when this outcome was mirrored from a
  /// structurally identical earlier query instead of executing.
  bool mirrored = false;

  MatchStats stats;

  /// Seconds from pool start until this query was admitted. Always the
  /// wall clock at admission, so approximately — not exactly — 0 when the
  /// admission window is unlimited; do not test it with == 0.
  double admit_seconds = 0;

  /// Seconds from pool start until this query's last task retired (equals
  /// admit_seconds for queries resolved at admission, e.g. cancelled while
  /// queued or matching nothing at step 0).
  double finish_seconds = 0;

  /// 0-based position of this query in the global admission sequence —
  /// the observable order the admission policy produced. Queries resolved
  /// without ever reaching admission (cancelled while queued) also consume
  /// a slot in this sequence, at the moment they resolve.
  uint64_t admit_index = 0;

  /// End-to-end timeline (process-monotonic stamps), recorded only when
  /// the query was submitted with SubmitOptions::trace; span.enabled is
  /// false otherwise. The scheduler fills submit/admit/first_task/
  /// last_task; the service layer adds resolve (and slice rows for fanned
  /// queries); the wire server adds deliver.
  QuerySpan span;
};

/// Aggregate outcome of one scheduler run.
struct SchedulerReport {
  std::vector<QueryOutcome> queries;  // submission order
  std::vector<WorkerReport> workers;  // size = pool threads
  uint64_t peak_task_bytes = 0;       // high-water mark of live task memory
  double seconds = 0;                 // whole-run wall time
};

/// The scheduler core shared by the single-query executor
/// (parallel/executor.h), the batch facade (parallel/batch_runner.h) and
/// the streaming query service (parallel/service.h): one worker pool where
/// each worker owns a Chase-Lev deque, schedules LIFO and steals up to half
/// of a random victim's queue when idle (Section VI.B/VI.C), generalised to
/// many concurrent query plans by tagging every task with its query
/// context. It owns the worker pool, the deques, the steal policy,
/// per-query deadlines/limits, the admission window and policy, and
/// per-query stats accumulation; the public engines are thin facades over
/// it. Queries admitted while the pool is running are seeded through a
/// shared injection queue that idle workers drain, so a newly admitted
/// query spreads over the pool even with work stealing disabled.
///
/// Two usage modes:
///
///  * Batch (the historical API): construct, Submit() each compiled plan,
///    then Run() exactly once — equivalent to Start() + Seal() + Join().
///  * Streaming: construct, Start(), then Submit() from any thread at any
///    time; each submission is admitted per the admission policy. Cancel()
///    stops one query; WaitQuery()/TryGetQuery() observe per-query
///    outcomes as they finish; Seal() + Join() shut the pool down.
///
/// Plans must stay alive until the owning query finishes; submitting the
/// same plan pointer for several queries is allowed (the plan caches do
/// this) and shares per-worker expanders between them.
class Scheduler {
 public:
  Scheduler(const IndexedHypergraph& data, const SchedulerOptions& options);

  /// Pool without a default data graph: every Submit must name its data
  /// through the data-graph overload. This is the shared-pool mode of the
  /// graph catalog (serve/catalog.h) — many per-graph services multiplex
  /// one worker pool, each submission carrying its own index.
  explicit Scheduler(const SchedulerOptions& options);

  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers one query. `plan` must outlive the query and must come from
  /// BuildQueryPlan/BuildQueryPlanWithOrder (its uid stamps the per-worker
  /// expander cache; a hand-assembled plan with uid 0 is rejected by
  /// assertion). `options.sink` may be null (count only). Thread-safe
  /// after Start(); must not be called after Seal(). Returns the query's
  /// index (also its index into SchedulerReport::queries).
  ///
  /// `options.completion`, when set, is invoked exactly once at the moment
  /// the query's outcome finalises — whatever the terminal status,
  /// including submissions resolved synchronously inside this call
  /// (queue-depth rejection) or inside Cancel()/Start()/Seal() — after the
  /// outcome became observable through TryGetQuery() and with no scheduler
  /// lock held (see SubmitOptions::completion for the full contract).
  ///
  /// Requires a construction-time data graph; the data-graph overload
  /// below works in both modes.
  uint32_t Submit(const QueryPlan* plan, const SubmitOptions& options);

  /// Submit against an explicit data graph (must match the index the plan
  /// was built against and outlive the query). `options.scan_slice/
  /// scan_slices` restrict the first-step SCAN to one contiguous slice of
  /// the root signature table — the scatter half of sharded execution:
  /// slices of the same plan partition the embedding set exactly, so
  /// summing the slice counts reproduces the unsliced result.
  uint32_t Submit(const QueryPlan* plan, const IndexedHypergraph& data,
                  const SubmitOptions& options);

  /// Back-compat convenience: Submit with default options and this sink.
  uint32_t Submit(const QueryPlan* plan, EmbeddingSink* sink = nullptr);

  /// Launches the worker pool. Queries submitted before Start() are seeded
  /// directly into the workers' deques (round-robin); later submissions go
  /// through the injection queue. Call exactly once.
  void Start();

  /// Declares that no further Submit() calls will follow, which arms pool
  /// termination: workers exit once every admitted query has retired its
  /// last task and the admission queue is empty.
  void Seal();

  /// Waits for termination (requires Seal()), joins the workers and
  /// returns the aggregate report. Call exactly once.
  SchedulerReport Join();

  /// Batch mode: Start() + Seal() + Join().
  SchedulerReport Run();

  /// Requests cancellation of one query. A query still waiting for
  /// admission resolves immediately (status kCancelled, zero stats); an
  /// in-flight query stops at the next task boundary and resolves once its
  /// live tasks drain. Returns false iff the query had already finished.
  /// Thread-safe.
  bool Cancel(uint32_t query);

  /// Blocks until the query finishes and returns its outcome. The
  /// reference stays valid until the query is Release()d (or for the
  /// scheduler's lifetime when Release is never called). Thread-safe; may
  /// be called before, during or after Join().
  const QueryOutcome& WaitQuery(uint32_t query);

  /// Bounded WaitQuery: blocks for at most `seconds` and returns null if
  /// the query was still unfinished when the budget expired. Thread-safe.
  const QueryOutcome* WaitQueryFor(uint32_t query, double seconds);

  /// Non-blocking WaitQuery: null until the query finishes.
  const QueryOutcome* TryGetQuery(uint32_t query);

  /// Recycles a finished query's outcome slot once the caller has copied
  /// everything it needs: after Release the index is permanently invalid
  /// (indices are never reused) and the query appears default-initialised
  /// in SchedulerReport::queries. Returns false when the query is unknown,
  /// already released or not yet finished. Must not race with
  /// WaitQuery/WaitQueryFor/TryGetQuery on the same query — the caller
  /// serialises retrieval against release (the service layer does).
  ///
  /// The *heavy* per-query state (task context, deadline, atomics) is
  /// recycled automatically the moment a query finishes, independent of
  /// Release; Release additionally drops the slim outcome record, keeping a
  /// long-lived streaming scheduler O(in-flight), not O(ever-submitted).
  bool Release(uint32_t query);

  /// Declares that no further queries will ever be submitted for the plan
  /// with this uid (QueryPlan::uid): workers lazily drop their cached
  /// per-plan expansion state. Call before freeing a plan whose queries all
  /// finished; without it, per-worker state grows with distinct plans.
  void RetirePlan(uint64_t plan_uid);

  /// Diagnostics: number of heavy per-query contexts currently allocated
  /// (in-flight + waiting queries). Bounded by the admission window plus
  /// the waiting queue at any instant.
  size_t LiveContexts();

  /// Diagnostics: number of (slim) per-query outcome slots retained, i.e.
  /// submissions not yet Release()d.
  size_t RetainedSlots();

  /// Total submissions shed by the max_queued_queries bound so far.
  uint64_t RejectedCount() const;

  /// Monotonic count of queries that have finished (any terminal status).
  /// Cheap (one atomic load): pollers can skip scanning for outcomes while
  /// it has not advanced.
  uint64_t FinishedCount() const;

  /// Blocks until every query submitted so far has finished (the pool may
  /// stay up for more submissions). Thread-safe.
  void WaitIdle();

  /// Resolved pool size (`parallel.num_threads`, with 0 mapped to
  /// std::thread::hardware_concurrency()).
  uint32_t num_threads() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_SCHEDULER_H_
