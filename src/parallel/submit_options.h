#ifndef HGMATCH_PARALLEL_SUBMIT_OPTIONS_H_
#define HGMATCH_PARALLEL_SUBMIT_OPTIONS_H_

#include <cstdint>
#include <functional>

// Plain-data submission vocabulary shared by the scheduler core
// (parallel/scheduler.h), the streaming service (parallel/service.h), the
// batch facade (parallel/batch_runner.h) and the query-set loader
// (io/loader.h). Deliberately free of scheduler/executor includes so that
// parsing a query-set file does not couple the io layer to the concurrency
// subsystem.

namespace hgmatch {

class EmbeddingSink;
struct QueryOutcome;

/// Order in which waiting queries are admitted into the pool when the
/// admission window has a free slot.
enum class AdmissionPolicy : uint8_t {
  /// Submission order (the batch engine's historical behaviour).
  kFifo,
  /// Highest SubmitOptions::priority first; ties in submission order.
  kPriority,
  /// Weighted fair queueing across tenants: each tenant accrues virtual
  /// time 1/weight per admitted query, and the pending tenant with the
  /// smallest virtual time goes next, so over any busy interval tenant
  /// admission shares converge to the weight ratio. Within a tenant,
  /// submission order.
  kWeightedFair,
};

/// Terminal state of one submitted query. A query has exactly one status;
/// when several causes coincide the most user-actionable one wins
/// (plan-error > rejected > cancelled > timeout > limit > ok).
enum class QueryStatus : uint8_t {
  kOk,         // ran to completion with exact counts
  kTimeout,    // its deadline fired and some of its work was dropped
  kLimit,      // stopped at its embedding limit
  kCancelled,  // Cancel() reached it before completion
  kPlanError,  // never executed: planning failed (service layer only)
  kRejected,   // shed at submission: the waiting queue was at its
               // max_queued_queries bound (retry later)
};

/// Stable display name: "ok", "timeout", "limit", "cancelled", "plan-error",
/// "rejected".
const char* QueryStatusName(QueryStatus status);

/// Per-query submission parameters. Defaults inherit the engine-wide
/// configuration, so `Submit(plan)` behaves exactly as before this struct
/// existed.
struct SubmitOptions {
  /// Inherit the engine-wide ParallelOptions::limit.
  static constexpr uint64_t kInheritLimit = ~uint64_t{0};

  /// Fairness group of the query under AdmissionPolicy::kWeightedFair.
  uint32_t tenant_id = 0;

  /// Admission priority under AdmissionPolicy::kPriority (higher = sooner).
  int32_t priority = 0;

  /// Relative share of this query's tenant under kWeightedFair; must be a
  /// finite value > 0 (anything else falls back to 1). A tenant with
  /// weight 3 is admitted ~3x as often as one with weight 1 while both
  /// have queries waiting.
  double weight = 1.0;

  /// Per-query timeout in seconds, measured from admission. Negative =
  /// inherit ParallelOptions::timeout_seconds; 0 = no timeout.
  double timeout_seconds = -1;

  /// Per-query embedding limit; kInheritLimit = inherit
  /// ParallelOptions::limit; 0 = unlimited.
  uint64_t limit = kInheritLimit;

  /// Admission charge of this query under AdmissionPolicy::kWeightedFair,
  /// in abstract work units: its tenant's virtual time advances by
  /// cost/weight when the query is admitted, so expensive queries consume
  /// proportionally more of their tenant's share. Must be finite and > 0
  /// (anything else falls back to 1). The service layer sets this to the
  /// measured task count of the previous run of the same plan (cost-aware
  /// WFQ); 1 — the flat historical charge — for first-seen plans.
  double cost = 1.0;

  /// Scatter-gather scan slicing: run this query against slice
  /// `scan_slice` (0-based) of `scan_slices` near-equal contiguous ranges
  /// of the first plan step's signature table instead of the whole table.
  /// Slices of one plan partition the table — and therefore the embedding
  /// set — exactly, so submitting every slice and summing the counts
  /// reproduces the unsliced result. The defaults (slice 0 of 1) are the
  /// whole table. scan_slices == 0 is treated as 1; an out-of-range
  /// scan_slice is clamped to the last slice.
  uint32_t scan_slice = 0;
  uint32_t scan_slices = 1;

  /// Record an end-to-end QuerySpan for this query: monotonic
  /// submit/admit/first-task/last-task/resolve timestamps surfaced through
  /// QueryOutcome::span (and, over the wire, the OUTCOME trace section
  /// when the peer negotiated kFeatureTrace). Untraced queries carry an
  /// empty span; the always-on latency histograms in the metrics registry
  /// are recorded either way.
  bool trace = false;

  /// Consumer of this query's embeddings; may be null (count only). Emit
  /// calls are serialised per query.
  EmbeddingSink* sink = nullptr;

  /// Completion hook: invoked exactly once when this query's outcome
  /// finalises, whatever the terminal status (ok, timeout, limit,
  /// cancelled, rejected — and, through the service layer, plan-error and
  /// mirrored resolutions). Fired strictly *after* the outcome is
  /// retrievable (TryGet-style reads from inside the hook observe it) and
  /// never while an engine lock is held, so the hook may call back into
  /// the engine's read-side API. It runs on whichever thread finalised the
  /// outcome: a pool worker for queries that execute, or the caller of
  /// Submit()/Cancel() for synchronously resolved ones (rejections,
  /// cancelled-while-queued, plan errors) — in the latter case before that
  /// call returns. Keep it fast and non-blocking (it runs on the hot
  /// completion path), and do not submit/cancel/wait from inside it.
  std::function<void(const QueryOutcome&)> completion;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_SUBMIT_OPTIONS_H_
