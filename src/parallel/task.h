#ifndef HGMATCH_PARALLEL_TASK_H_
#define HGMATCH_PARALLEL_TASK_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "core/types.h"

namespace hgmatch {

/// The minimal scheduling unit of HGMatch (Definition VI.1). A task is
/// either a SCAN task (a sub-range of the first plan step's signature
/// table, realising T_SCAN without materialising one task per hyperedge)
/// or an EXPAND task (a partial embedding of `depth` hyperedges). SINK
/// logic runs inline when an expansion completes an embedding, exactly as a
/// T_SINK that is scheduled immediately after being spawned (LIFO order).
///
/// Tasks are heap-allocated with a flexible trailing array so a task is one
/// contiguous allocation of 24 + 4*depth bytes — "a task contains only a
/// partial embedding and a pointer to the function defining its execution
/// logic" (Section VI.B Remark); here the kind tag plays the role of the
/// function pointer, and `owner` tags the task with the scheduler-internal
/// query context it belongs to, so tasks of many concurrent queries can mix
/// freely in the same deques while counters, limits and deadlines stay
/// exact per query (the multi-query generalisation of Section VI.C).
struct Task {
  enum class Kind : uint32_t { kScan, kExpand };

  void* owner;        // scheduler query context (opaque to this header)
  Kind kind;
  uint32_t depth;     // EXPAND: matched hyperedges; SCAN: unused (0)
  uint32_t scan_lo;   // SCAN: range [scan_lo, scan_hi) into the scan table
  uint32_t scan_hi;
  EdgeId edges[];     // EXPAND: the partial embedding (depth entries)

  /// Bytes of the allocation backing this task.
  size_t SizeBytes() const {
    return sizeof(Task) + sizeof(EdgeId) * depth;
  }

  static Task* NewScan(void* owner, uint32_t lo, uint32_t hi) {
    Task* t = static_cast<Task*>(::malloc(sizeof(Task)));
    if (t == nullptr) ::abort();  // allocation failure is not recoverable
    t->owner = owner;
    t->kind = Kind::kScan;
    t->depth = 0;
    t->scan_lo = lo;
    t->scan_hi = hi;
    return t;
  }

  static Task* NewExpand(void* owner, const EdgeId* prefix,
                         uint32_t prefix_len, EdgeId next) {
    Task* t = static_cast<Task*>(
        ::malloc(sizeof(Task) + sizeof(EdgeId) * (prefix_len + 1)));
    if (t == nullptr) ::abort();  // allocation failure is not recoverable
    t->owner = owner;
    t->kind = Kind::kExpand;
    t->depth = prefix_len + 1;
    t->scan_lo = t->scan_hi = 0;
    for (uint32_t i = 0; i < prefix_len; ++i) t->edges[i] = prefix[i];
    t->edges[prefix_len] = next;
    return t;
  }

  static void Free(Task* t) { ::free(t); }
};

/// Tracks live task bytes and their high-water mark across all workers;
/// the peak realises the left-hand side of the Theorem VI.1 memory bound,
/// which Exp-5 (Fig 11) compares against BFS materialisation.
class TaskMemoryTracker {
 public:
  void OnAlloc(size_t bytes) {
    const uint64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  void OnFree(size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_TASK_H_
