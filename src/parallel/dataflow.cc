#include "parallel/dataflow.h"

namespace hgmatch {

DataflowGraph DataflowGraph::FromPlan(const QueryPlan& plan) {
  DataflowGraph g;
  for (uint32_t i = 0; i < plan.NumSteps(); ++i) {
    Operator op;
    op.kind = i == 0 ? OperatorKind::kScan : OperatorKind::kExpand;
    op.step = i;
    op.signature = plan.steps[i].signature;
    g.operators_.push_back(std::move(op));
  }
  Operator sink;
  sink.kind = OperatorKind::kSink;
  sink.step = plan.NumSteps();
  g.operators_.push_back(std::move(sink));
  return g;
}

std::string DataflowGraph::ToString(const IndexedHypergraph* data) const {
  std::string out;
  for (const Operator& op : operators_) {
    switch (op.kind) {
      case OperatorKind::kScan:
        out += "SCAN" + SignatureToString(op.signature);
        break;
      case OperatorKind::kExpand:
        out += "EXPAND" + SignatureToString(op.signature);
        break;
      case OperatorKind::kSink:
        out += "SINK";
        break;
    }
    if (data != nullptr && op.kind != OperatorKind::kSink) {
      out += " [card=" + std::to_string(data->Cardinality(op.signature)) + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace hgmatch
