#include "parallel/executor.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/candidates.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

// Shared state of one parallel matching run.
class Engine {
 public:
  Engine(const IndexedHypergraph& data, const QueryPlan& plan,
         const ParallelOptions& options, EmbeddingSink* sink)
      : data_(data),
        plan_(plan),
        options_(options),
        sink_(sink),
        deadline_(Deadline::After(options.timeout_seconds)),
        num_threads_(options.num_threads != 0
                         ? options.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {
  }

  ParallelResult Run() {
    ParallelResult result;
    Timer wall;
    const uint32_t n = plan_.NumSteps();
    workers_.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      workers_.push_back(std::make_unique<Worker>(data_, plan_, i,
                                                  options_.seed + i));
    }

    // Seed: split the first step's signature table into one SCAN range per
    // worker (the static split is also the NOSTL load-assignment baseline).
    const Partition* first =
        n > 0 ? data_.FindPartition(plan_.steps[0].signature) : nullptr;
    if (first != nullptr && !first->edges().empty()) {
      const uint64_t total = first->edges().size();
      const uint64_t chunk = (total + num_threads_ - 1) / num_threads_;
      for (uint32_t w = 0; w < num_threads_; ++w) {
        const uint64_t lo = static_cast<uint64_t>(w) * chunk;
        if (lo >= total) break;
        const uint64_t hi = std::min<uint64_t>(lo + chunk, total);
        Spawn(workers_[w].get(),
              Task::NewScan(static_cast<uint32_t>(lo),
                            static_cast<uint32_t>(hi)));
      }
      scan_table_ = &first->edges();
    }

    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      threads.emplace_back([this, i] { WorkerLoop(workers_[i].get()); });
    }
    for (auto& t : threads) t.join();

    for (auto& w : workers_) {
      result.stats += w->report.stats;
      result.workers.push_back(std::move(w->report));
    }
    result.stats.timed_out = timed_out_.load(std::memory_order_relaxed);
    result.stats.limit_hit = limit_hit_.load(std::memory_order_relaxed);
    result.stats.seconds = wall.ElapsedSeconds();
    result.peak_task_bytes = memory_.peak_bytes();
    return result;
  }

 private:
  struct Worker {
    Worker(const IndexedHypergraph& data, const QueryPlan& plan, uint32_t id,
           uint64_t seed)
        : id(id), expander(data, plan), rng(seed) {
      embedding.resize(std::max<size_t>(1, plan.NumSteps()));
    }

    uint32_t id;
    WorkStealingDeque<Task*> deque;
    Expander expander;
    Rng rng;
    std::vector<EdgeId> valid;      // Expand() output buffer
    std::vector<EdgeId> embedding;  // SINK copy buffer
    WorkerReport report;
    uint64_t poll_counter = 0;
  };

  void Spawn(Worker* w, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++w->report.tasks_spawned;
    w->deque.Push(t);
  }

  void Finish(Task* t) {
    memory_.OnFree(t->SizeBytes());
    Task::Free(t);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  bool Stopped() const { return stop_.load(std::memory_order_relaxed); }

  void PollDeadline(Worker* w) {
    if (++w->poll_counter >= 1024) {
      w->poll_counter = 0;
      if (deadline_.Expired()) {
        timed_out_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void EmitEmbedding(Worker* w, const EdgeId* prefix, uint32_t prefix_len,
                     EdgeId last) {
    ++w->report.stats.embeddings;
    if (sink_ != nullptr) {
      for (uint32_t i = 0; i < prefix_len; ++i) w->embedding[i] = prefix[i];
      w->embedding[prefix_len] = last;
      std::lock_guard<std::mutex> lock(sink_mutex_);
      sink_->Emit(w->embedding.data(), prefix_len + 1);
    }
    if (options_.limit != 0) {
      const uint64_t total =
          emitted_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (total >= options_.limit) {
        limit_hit_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Handles one child hyperedge `c` extending `prefix` (already validated):
  // emit if complete, otherwise spawn the EXPAND task (T_SINK is executed
  // inline; it would be scheduled immediately after spawning under LIFO).
  void ProcessChild(Worker* w, const EdgeId* prefix, uint32_t prefix_len,
                    EdgeId c) {
    if (prefix_len + 1 == plan_.NumSteps()) {
      EmitEmbedding(w, prefix, prefix_len, c);
    } else {
      Spawn(w, Task::NewExpand(prefix, prefix_len, c));
    }
  }

  void ExecuteScan(Worker* w, Task* t) {
    // Range splitting: push the upper half back (thieves take the oldest,
    // i.e. the largest, ranges first) until the range is small enough.
    uint32_t lo = t->scan_lo;
    uint32_t hi = t->scan_hi;
    while (hi - lo > options_.scan_grain) {
      const uint32_t mid = lo + (hi - lo) / 2;
      Spawn(w, Task::NewScan(mid, hi));
      hi = mid;
    }
    // The first query hyperedge matches every hyperedge of its signature
    // table (Observation V.1); no validation is needed at step 0.
    for (uint32_t i = lo; i < hi && !Stopped(); ++i) {
      ProcessChild(w, nullptr, 0, (*scan_table_)[i]);
      PollDeadline(w);
    }
  }

  void ExecuteExpand(Worker* w, Task* t) {
    w->expander.Expand(t->edges, t->depth, &w->valid, &w->report.stats);
    for (EdgeId c : w->valid) {
      if (Stopped()) break;
      ProcessChild(w, t->edges, t->depth, c);
    }
    PollDeadline(w);
  }

  void Execute(Worker* w, Task* t) {
    Timer busy;
    if (t->kind == Task::Kind::kScan) {
      ExecuteScan(w, t);
    } else {
      ExecuteExpand(w, t);
    }
    ++w->report.tasks_executed;
    w->report.busy_seconds += busy.ElapsedSeconds();
  }

  // Steals up to half of a random victim's queue (Section VI.C). The first
  // stolen task is returned for immediate execution; the rest go into the
  // caller's own deque.
  Task* TrySteal(Worker* w) {
    for (uint32_t attempt = 0; attempt < 2 * num_threads_; ++attempt) {
      const uint32_t victim_id =
          static_cast<uint32_t>(w->rng.NextBounded(num_threads_));
      if (victim_id == w->id) continue;
      Worker* victim = workers_[victim_id].get();
      Task* first = nullptr;
      if (!victim->deque.Steal(&first)) continue;
      ++w->report.steals;
      int64_t extra = victim->deque.SizeApprox() / 2;
      Task* t = nullptr;
      while (extra-- > 0 && victim->deque.Steal(&t)) {
        w->deque.Push(t);
      }
      return first;
    }
    return nullptr;
  }

  void Drain(Worker* w) {
    Task* t = nullptr;
    while (w->deque.Pop(&t)) Finish(t);
  }

  void WorkerLoop(Worker* w) {
    while (true) {
      if (pending_.load(std::memory_order_acquire) == 0) break;
      if (Stopped()) {
        Drain(w);
        if (pending_.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      Task* t = nullptr;
      if (w->deque.Pop(&t)) {
        Execute(w, t);
        Finish(t);
      } else if (options_.work_stealing && (t = TrySteal(w)) != nullptr) {
        Execute(w, t);
        Finish(t);
      } else {
        std::this_thread::yield();
      }
    }
  }

  const IndexedHypergraph& data_;
  const QueryPlan& plan_;
  const ParallelOptions& options_;
  EmbeddingSink* sink_;
  const Deadline deadline_;
  const uint32_t num_threads_;

  std::vector<std::unique_ptr<Worker>> workers_;
  const EdgeSet* scan_table_ = nullptr;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> timed_out_{false};
  std::atomic<bool> limit_hit_{false};
  std::atomic<uint64_t> emitted_{0};
  TaskMemoryTracker memory_;
  std::mutex sink_mutex_;
};

}  // namespace

ParallelResult ExecutePlanParallel(const IndexedHypergraph& data,
                                   const QueryPlan& plan,
                                   const ParallelOptions& options,
                                   EmbeddingSink* sink) {
  Engine engine(data, plan, options, sink);
  return engine.Run();
}

Result<ParallelResult> MatchParallel(const IndexedHypergraph& data,
                                     const Hypergraph& query,
                                     const ParallelOptions& options,
                                     EmbeddingSink* sink) {
  Result<QueryPlan> plan = BuildQueryPlan(query, data);
  if (!plan.ok()) return plan.status();
  return ExecutePlanParallel(data, plan.value(), options, sink);
}

}  // namespace hgmatch
