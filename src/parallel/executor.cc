#include "parallel/executor.h"

#include "parallel/scheduler.h"

namespace hgmatch {

// The single-query engine is a batch of one on the shared scheduler core
// (parallel/scheduler.h): all worker-pool, deque, steal and deadline logic
// lives there; this translation unit only maps the option/result types.
ParallelResult ExecutePlanParallel(const IndexedHypergraph& data,
                                   const QueryPlan& plan,
                                   const ParallelOptions& options,
                                   EmbeddingSink* sink) {
  SchedulerOptions sched_options;
  sched_options.parallel = options;
  Scheduler scheduler(data, sched_options);
  scheduler.Submit(&plan, sink);
  SchedulerReport report = scheduler.Run();

  ParallelResult result;
  result.stats = report.queries[0].stats;
  result.stats.seconds = report.seconds;  // single query: run time == wall
  result.workers = std::move(report.workers);
  result.peak_task_bytes = report.peak_task_bytes;
  return result;
}

Result<ParallelResult> MatchParallel(const IndexedHypergraph& data,
                                     const Hypergraph& query,
                                     const ParallelOptions& options,
                                     EmbeddingSink* sink) {
  Result<QueryPlan> plan = BuildQueryPlan(query, data);
  if (!plan.ok()) return plan.status();
  return ExecutePlanParallel(data, plan.value(), options, sink);
}

}  // namespace hgmatch
