#include "parallel/scheduler.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/candidates.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNoQuery = 0xffffffffu;

// Shared per-query state. Tasks are tagged with their context (Task::owner),
// so counters, limits and deadlines stay exact per query even while tasks of
// different queries mix in the same deques.
//
// Non-atomic fields written at admission (deadline, admit_seconds, seeded)
// are published to other workers through the structure that carries the
// query's SCAN tasks: the initial admission pushes into the (not yet
// running) workers' deques, whose Pop/Steal synchronise with the Push, and
// mid-run admissions go through the injection queue, whose mutex orders the
// writes before any reader.
struct QueryContext {
  uint32_t index = 0;
  const QueryPlan* plan = nullptr;
  const EdgeSet* scan_table = nullptr;  // first-step signature table
  EmbeddingSink* sink = nullptr;
  std::mutex sink_mutex;
  Deadline deadline;        // per-query budget, armed at admission
  double admit_seconds = 0; // Run() start -> admission
  // Written exactly once, by the worker that retires the query's last task
  // (pending can only reach zero once — children are spawned before their
  // parent task is retired).
  double finish_seconds = 0;
  bool seeded = false;
  std::atomic<uint64_t> emitted{0};
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  // Why two flags instead of a single timed_out: a deadline may fire while
  // the query's final tasks are mid-execution and still complete all their
  // counts. The query is only *reported* timed out when the deadline fired
  // AND some of its work was actually dropped, so exact counts are never
  // mislabelled.
  std::atomic<bool> timeout_fired{false};
  std::atomic<bool> work_dropped{false};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> finished{false};
};

}  // namespace

// One pool thread. Per-query state (stats, expanders) is sparse: slots
// materialise on first touch, so a worker that never executes a task of
// query q spends nothing on q.
class Scheduler::Impl {
 public:
  Impl(const IndexedHypergraph& data, const SchedulerOptions& options)
      : data_(data),
        options_(options),
        num_threads_(options.parallel.num_threads != 0
                         ? options.parallel.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {
  }

  uint32_t Submit(const QueryPlan* plan, EmbeddingSink* sink) {
    auto ctx = std::make_unique<QueryContext>();
    ctx->index = static_cast<uint32_t>(queries_.size());
    ctx->plan = plan;
    ctx->sink = sink;
    const Partition* first =
        plan->NumSteps() > 0 ? data_.FindPartition(plan->steps[0].signature)
                             : nullptr;
    if (first != nullptr && !first->edges().empty()) {
      ctx->scan_table = &first->edges();
    }
    queries_.push_back(std::move(ctx));
    return queries_.back()->index;
  }

  SchedulerReport Run() {
    wall_.Reset();
    batch_deadline_ = Deadline::After(options_.batch_timeout_seconds);

    workers_.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      workers_.push_back(
          std::make_unique<Worker>(i, options_.parallel.seed + i));
    }

    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      AdmitLocked(nullptr);
    }

    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      threads.emplace_back([this, i] { WorkerLoop(workers_[i].get()); });
    }
    for (auto& t : threads) t.join();

    SchedulerReport report;
    report.queries.resize(queries_.size());
    for (auto& w : workers_) {
      for (const auto& [q, stats] : w->query_stats) {
        report.queries[q].stats += stats;
        w->report.stats += stats;
      }
    }
    for (size_t q = 0; q < queries_.size(); ++q) {
      QueryContext* ctx = queries_[q].get();
      MatchStats& stats = report.queries[q].stats;
      stats.limit_hit = ctx->limit_hit.load(std::memory_order_relaxed);
      stats.timed_out = ctx->timeout_fired.load(std::memory_order_relaxed) &&
                        ctx->work_dropped.load(std::memory_order_relaxed);
      stats.seconds =
          ctx->seeded ? ctx->finish_seconds - ctx->admit_seconds : 0;
      report.queries[q].admit_seconds = ctx->admit_seconds;
    }
    for (auto& w : workers_) report.workers.push_back(std::move(w->report));
    report.peak_task_bytes = memory_.peak_bytes();
    report.seconds = wall_.ElapsedSeconds();
    return report;
  }

  uint32_t num_threads() const { return num_threads_; }

 private:
  struct Worker {
    Worker(uint32_t id, uint64_t seed) : id(id), rng(seed) {}

    uint32_t id;
    WorkStealingDeque<Task*> deque;
    Rng rng;
    std::vector<EdgeId> embedding;      // SINK copy buffer
    std::vector<std::vector<EdgeId>> valid_at;  // Expand() output per depth
    std::vector<EdgeId> inline_prefix;  // quota-path partial embedding
    // Sparse per-query accumulation, O(touched queries) per worker. The
    // one-entry caches skip the hash lookup on the common task runs of one
    // query (LIFO scheduling keeps runs long).
    std::unordered_map<uint32_t, MatchStats> query_stats;
    std::unordered_map<const QueryPlan*, std::unique_ptr<Expander>> expanders;
    uint32_t stats_key = kNoQuery;
    MatchStats* stats_cache = nullptr;
    const QueryPlan* expander_key = nullptr;
    Expander* expander_cache = nullptr;
    WorkerReport report;
    uint64_t poll_counter = 0;
  };

  static QueryContext* Ctx(Task* t) {
    return static_cast<QueryContext*>(t->owner);
  }

  // unordered_map guarantees reference stability of values, so the caches
  // survive rehashes.
  MatchStats* StatsFor(Worker* w, QueryContext* ctx) {
    if (w->stats_key != ctx->index) {
      w->stats_key = ctx->index;
      w->stats_cache = &w->query_stats[ctx->index];
    }
    return w->stats_cache;
  }

  Expander* ExpanderFor(Worker* w, QueryContext* ctx) {
    if (w->expander_key != ctx->plan) {
      auto& slot = w->expanders[ctx->plan];
      if (slot == nullptr) slot = std::make_unique<Expander>(data_, *ctx->plan);
      w->expander_key = ctx->plan;
      w->expander_cache = slot.get();
    }
    return w->expander_cache;
  }

  // Grows the per-depth buffers up front so no reference into valid_at is
  // ever invalidated by a deeper (inline) expansion resizing the vector.
  void EnsureDepthBuffers(Worker* w, uint32_t steps) {
    if (w->valid_at.size() < steps) w->valid_at.resize(steps);
    if (w->inline_prefix.size() < steps) w->inline_prefix.resize(steps);
  }

  void Spawn(Worker* w, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++w->report.tasks_spawned;
    w->deque.Push(t);
  }

  void Finish(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    memory_.OnFree(t->SizeBytes());
    Task::Free(t);
    if (ctx->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of this query retired: record its finish, free the
      // admission slot and seed waiting queries *before* the global count
      // below can reach zero, so the pool never shuts down between two
      // admissions.
      ctx->finish_seconds = wall_.ElapsedSeconds();
      ctx->finished.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(admit_mutex_);
      --inflight_;
      AdmitLocked(w);
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // Mid-run admissions cannot Push into another worker's deque (Chase-Lev
  // Push is owner-only), so their SCAN ranges go through this shared
  // injection queue, which idle workers drain before resorting to stealing.
  // Callers hold admit_mutex_. Two properties hang off that lock: the
  // ranges spread over the pool even with work stealing disabled, and no
  // range is reachable — let alone retired — until the whole query is
  // seeded, so ctx->pending cannot transiently hit zero mid-seeding and run
  // the last-task path in Finish() early (which would double-free the
  // admission slot and wrap inflight_).
  void Inject(Worker* seeder, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++seeder->report.tasks_spawned;
    inject_.push_back(t);
    inject_size_.fetch_add(1, std::memory_order_release);
  }

  Task* PopInject() {
    // Lock-free pre-check so idle workers spinning in WorkerLoop do not
    // hammer admit_mutex_ when nothing was injected.
    if (inject_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard<std::mutex> lock(admit_mutex_);
    if (inject_.empty()) return nullptr;
    Task* t = inject_.front();
    inject_.pop_front();
    inject_size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }

  // Admits queries in submission order until the window is full or none are
  // left. Callers hold admit_mutex_. `seeder == nullptr` only for the
  // initial admission (before the pool threads start), where SCAN ranges
  // are spread round-robin over all workers' deques; mid-run admissions go
  // through the injection queue (see Inject()).
  void AdmitLocked(Worker* seeder) {
    const uint32_t window = options_.max_inflight_queries;
    while (next_admit_ < queries_.size() &&
           (window == 0 || inflight_ < window)) {
      QueryContext* ctx = queries_[next_admit_++].get();
      ctx->admit_seconds = wall_.ElapsedSeconds();
      ctx->deadline = Deadline::After(options_.parallel.timeout_seconds);
      if (ctx->stop.load(std::memory_order_relaxed)) {
        // Stopped before it ever ran (whole-run deadline): all of its work
        // is dropped by definition, unless it had none to begin with.
        if (ctx->scan_table != nullptr) {
          ctx->work_dropped.store(true, std::memory_order_relaxed);
        }
        ctx->finish_seconds = ctx->admit_seconds;
        ctx->finished.store(true, std::memory_order_release);
        continue;
      }
      if (ctx->scan_table == nullptr) {
        // Nothing matches the first step: done at admission.
        ctx->finish_seconds = ctx->admit_seconds;
        ctx->finished.store(true, std::memory_order_release);
        continue;
      }
      ctx->seeded = true;
      ++inflight_;
      const uint64_t total = ctx->scan_table->size();
      const uint64_t chunk = (total + num_threads_ - 1) / num_threads_;
      for (uint32_t w = 0; w < num_threads_; ++w) {
        const uint64_t lo = static_cast<uint64_t>(w) * chunk;
        if (lo >= total) break;
        const uint64_t hi = std::min<uint64_t>(lo + chunk, total);
        Task* t = Task::NewScan(ctx, static_cast<uint32_t>(lo),
                                static_cast<uint32_t>(hi));
        if (seeder == nullptr) {
          Spawn(workers_[(w + ctx->index) % num_threads_].get(), t);
        } else {
          Inject(seeder, t);
        }
      }
    }
    if (next_admit_ == queries_.size()) {
      all_admitted_.store(true, std::memory_order_release);
    }
  }

  void PollDeadlines(Worker* w, QueryContext* ctx) {
    if (++w->poll_counter < 1024) return;
    w->poll_counter = 0;
    if (ctx->deadline.Expired()) {
      ctx->timeout_fired.store(true, std::memory_order_relaxed);
      ctx->stop.store(true, std::memory_order_relaxed);
    }
    if (batch_deadline_.Expired() &&
        !batch_expired_.exchange(true, std::memory_order_relaxed)) {
      for (auto& c : queries_) {
        if (c->finished.load(std::memory_order_acquire)) continue;
        c->timeout_fired.store(true, std::memory_order_relaxed);
        c->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  void EmitEmbedding(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                     uint32_t prefix_len, EdgeId last) {
    ++StatsFor(w, ctx)->embeddings;
    if (ctx->sink != nullptr) {
      if (w->embedding.size() < static_cast<size_t>(prefix_len) + 1) {
        w->embedding.resize(prefix_len + 1);
      }
      for (uint32_t i = 0; i < prefix_len; ++i) w->embedding[i] = prefix[i];
      w->embedding[prefix_len] = last;
      std::lock_guard<std::mutex> lock(ctx->sink_mutex);
      ctx->sink->Emit(w->embedding.data(), prefix_len + 1);
    }
    if (options_.parallel.limit != 0) {
      const uint64_t total =
          ctx->emitted.fetch_add(1, std::memory_order_relaxed) + 1;
      if (total >= options_.parallel.limit) {
        ctx->limit_hit.store(true, std::memory_order_relaxed);
        ctx->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Handles one child hyperedge `c` extending `prefix` (already validated):
  // emit if complete, queue the EXPAND task, or — when the query is over
  // its task quota — expand depth-first inline so its deque share stays
  // bounded (the work still happens, it just cannot bury other queries'
  // tasks under millions of queued expansions).
  void ProcessChild(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                    uint32_t prefix_len, EdgeId c) {
    if (prefix_len + 1 == ctx->plan->NumSteps()) {
      EmitEmbedding(w, ctx, prefix, prefix_len, c);
    } else if (options_.task_quota != 0 &&
               ctx->pending.load(std::memory_order_relaxed) >=
                   static_cast<int64_t>(options_.task_quota)) {
      for (uint32_t i = 0; i < prefix_len; ++i) w->inline_prefix[i] = prefix[i];
      w->inline_prefix[prefix_len] = c;
      ExpandInline(w, ctx, prefix_len + 1);
    } else {
      Spawn(w, Task::NewExpand(ctx, prefix, prefix_len, c));
    }
  }

  // Depth-first expansion of w->inline_prefix[0..len) without queueing
  // tasks. Recursion depth is bounded by the plan length; each depth owns
  // its valid buffer (EnsureDepthBuffers ran before any reference is held).
  void ExpandInline(Worker* w, QueryContext* ctx, uint32_t len) {
    std::vector<EdgeId>& valid = w->valid_at[len];
    ExpanderFor(w, ctx)->Expand(w->inline_prefix.data(), len, &valid,
                                StatsFor(w, ctx));
    const uint32_t steps = ctx->plan->NumSteps();
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      if (len + 1 == steps) {
        EmitEmbedding(w, ctx, w->inline_prefix.data(), len, valid[i]);
      } else {
        w->inline_prefix[len] = valid[i];
        ExpandInline(w, ctx, len + 1);
      }
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  void ExecuteScan(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    // Range splitting: push the upper half back (thieves take the oldest,
    // i.e. the largest, ranges first) until the range is small enough.
    // scan_grain clamps to >= 1: at grain 0 a 1-element range would split
    // into an identical copy of itself forever.
    const uint32_t grain = std::max(1u, options_.parallel.scan_grain);
    uint32_t lo = t->scan_lo;
    uint32_t hi = t->scan_hi;
    while (hi - lo > grain) {
      const uint32_t mid = lo + (hi - lo) / 2;
      Spawn(w, Task::NewScan(ctx, mid, hi));
      hi = mid;
    }
    // The first query hyperedge matches every hyperedge of its signature
    // table (Observation V.1); no validation is needed at step 0.
    uint32_t i = lo;
    for (; i < hi; ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, nullptr, 0, (*ctx->scan_table)[i]);
      PollDeadlines(w, ctx);
    }
    if (i < hi) ctx->work_dropped.store(true, std::memory_order_relaxed);
  }

  void ExecuteExpand(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    std::vector<EdgeId>& valid = w->valid_at[t->depth];
    ExpanderFor(w, ctx)->Expand(t->edges, t->depth, &valid, StatsFor(w, ctx));
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, t->edges, t->depth, valid[i]);
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  void Execute(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    if (ctx->stop.load(std::memory_order_relaxed)) {
      // Dropped, not run: this query's counts are now incomplete.
      ctx->work_dropped.store(true, std::memory_order_relaxed);
      return;
    }
    Timer busy;
    if (t->kind == Task::Kind::kScan) {
      ExecuteScan(w, t);
    } else {
      ExecuteExpand(w, t);
    }
    ++w->report.tasks_executed;
    w->report.busy_seconds += busy.ElapsedSeconds();
  }

  // Steals up to half of a random victim's queue (Section VI.C). The first
  // stolen task is returned for immediate execution; the rest go into the
  // caller's own deque.
  Task* TrySteal(Worker* w) {
    if (num_threads_ < 2) return nullptr;
    for (uint32_t attempt = 0; attempt < 2 * num_threads_; ++attempt) {
      const uint32_t victim_id =
          static_cast<uint32_t>(w->rng.NextBounded(num_threads_));
      if (victim_id == w->id) continue;
      Worker* victim = workers_[victim_id].get();
      Task* first = nullptr;
      if (!victim->deque.Steal(&first)) continue;
      ++w->report.steals;
      int64_t extra = victim->deque.SizeApprox() / 2;
      Task* t = nullptr;
      while (extra-- > 0 && victim->deque.Steal(&t)) {
        w->deque.Push(t);
      }
      return first;
    }
    return nullptr;
  }

  void WorkerLoop(Worker* w) {
    while (true) {
      // Finish() admits waiting queries before decrementing the global
      // pending count, so pending_ == 0 && all_admitted_ is a stable
      // termination condition.
      if (pending_.load(std::memory_order_acquire) == 0 &&
          all_admitted_.load(std::memory_order_acquire)) {
        break;
      }
      Task* t = nullptr;
      if (!w->deque.Pop(&t)) {
        // Freshly injected seed ranges first (they spread a newly admitted
        // query without depending on work stealing), then steal.
        t = PopInject();
        if (t == nullptr && options_.parallel.work_stealing) t = TrySteal(w);
      }
      if (t != nullptr) {
        Execute(w, t);
        Finish(w, t);
      } else {
        std::this_thread::yield();
      }
    }
  }

  const IndexedHypergraph& data_;
  const SchedulerOptions options_;
  const uint32_t num_threads_;
  Deadline batch_deadline_;
  Timer wall_;

  std::vector<std::unique_ptr<QueryContext>> queries_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex admit_mutex_;
  uint32_t next_admit_ = 0;        // guarded by admit_mutex_
  uint32_t inflight_ = 0;          // guarded by admit_mutex_
  std::deque<Task*> inject_;       // mid-run SCAN seeds, guarded by admit_mutex_
  std::atomic<int64_t> inject_size_{0};
  std::atomic<bool> all_admitted_{false};
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> batch_expired_{false};
  TaskMemoryTracker memory_;
};

Scheduler::Scheduler(const IndexedHypergraph& data,
                     const SchedulerOptions& options)
    : impl_(std::make_unique<Impl>(data, options)) {}

Scheduler::~Scheduler() = default;

uint32_t Scheduler::Submit(const QueryPlan* plan, EmbeddingSink* sink) {
  return impl_->Submit(plan, sink);
}

SchedulerReport Scheduler::Run() { return impl_->Run(); }

uint32_t Scheduler::num_threads() const { return impl_->num_threads(); }

}  // namespace hgmatch
