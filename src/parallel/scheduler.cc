#include "parallel/scheduler.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/candidates.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hgmatch {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kTimeout: return "timeout";
    case QueryStatus::kLimit: return "limit";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kPlanError: return "plan-error";
  }
  return "unknown";
}

namespace {

// Shared per-query state. Tasks are tagged with their context (Task::owner),
// so counters, limits and deadlines stay exact per query even while tasks of
// different queries mix in the same deques.
//
// Non-atomic fields written at admission (deadline, admit_seconds, seeded)
// are published to other workers through the structure that carries the
// query's SCAN tasks: pre-start admission pushes into the (not yet running)
// workers' deques, whose Pop/Steal synchronise with the Push, and admissions
// while the pool runs go through the injection queue, whose mutex orders the
// writes before any reader.
//
// The stat sums are flushed once per task (Impl::FlushTaskStats), not once
// per counter event, so the atomics are off the per-candidate hot path; the
// sums are complete exactly when the query's last task retires (every flush
// happens-before that task's pending decrement), which is when the outcome
// is assembled.
struct QueryContext {
  uint32_t index = 0;
  const QueryPlan* plan = nullptr;
  const EdgeSet* scan_table = nullptr;  // first-step signature table
  EmbeddingSink* sink = nullptr;
  std::mutex sink_mutex;

  // Effective per-query budgets and admission parameters, resolved against
  // the engine-wide defaults at Submit().
  double timeout_seconds = 0;
  uint64_t limit = 0;
  uint32_t tenant_id = 0;
  int32_t priority = 0;
  double weight = 1.0;

  Deadline deadline;         // per-query budget, armed at admission
  double admit_seconds = 0;  // pool start -> admission
  // Written exactly once, by the worker that retires the query's last task
  // (pending can only reach zero once — children are spawned before their
  // parent task is retired).
  double finish_seconds = 0;
  uint64_t admit_index = 0;  // global admission sequence number
  bool seeded = false;

  std::atomic<uint64_t> emitted{0};
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  // Why two flags instead of a single timed_out: a deadline may fire while
  // the query's final tasks are mid-execution and still complete all their
  // counts. The query is only *reported* timed out when the deadline fired
  // AND some of its work was actually dropped, so exact counts are never
  // mislabelled.
  std::atomic<bool> timeout_fired{false};
  std::atomic<bool> work_dropped{false};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> finished{false};

  // Per-task stat flushes; summed into the outcome when the query finishes.
  std::atomic<uint64_t> embeddings_sum{0};
  std::atomic<uint64_t> candidates_sum{0};
  std::atomic<uint64_t> filtered_sum{0};
  std::atomic<uint64_t> expansions_sum{0};

  // Assembled by CompleteQuery; readable once `finished` is set.
  QueryOutcome outcome;
};

}  // namespace

// One pool thread plus the streaming admission machinery. Worker state
// (expanders, depth buffers) is sparse per plan: a worker that never
// executes a task of plan p spends nothing on p.
class Scheduler::Impl {
 public:
  Impl(const IndexedHypergraph& data, const SchedulerOptions& options)
      : data_(data),
        options_(options),
        num_threads_(options.parallel.num_threads != 0
                         ? options.parallel.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {
  }

  ~Impl() {
    if (!started_ || joined_) return;
    // Abandoned while running (e.g. an exception unwound past Join): stop
    // every unfinished query and drain, so the threads can be joined.
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      for (auto& q : queries_) {
        if (!q->finished.load(std::memory_order_acquire)) {
          q->cancel_requested.store(true, std::memory_order_relaxed);
          q->stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    Seal();
    Join();
  }

  uint32_t Submit(const QueryPlan* plan, const SubmitOptions& so) {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    auto ctx = std::make_unique<QueryContext>();
    ctx->index = static_cast<uint32_t>(queries_.size());
    ctx->plan = plan;
    ctx->sink = so.sink;
    ctx->tenant_id = so.tenant_id;
    ctx->priority = so.priority;
    // A non-finite weight would zero the tenant's virtual-time increment
    // and starve every other tenant; fall back to the neutral share.
    ctx->weight =
        (so.weight > 0 && std::isfinite(so.weight)) ? so.weight : 1.0;
    ctx->timeout_seconds = so.timeout_seconds < 0
                               ? options_.parallel.timeout_seconds
                               : so.timeout_seconds;
    ctx->limit = so.limit == SubmitOptions::kInheritLimit
                     ? options_.parallel.limit
                     : so.limit;
    const Partition* first =
        plan->NumSteps() > 0 ? data_.FindPartition(plan->steps[0].signature)
                             : nullptr;
    if (first != nullptr && !first->edges().empty()) {
      ctx->scan_table = &first->edges();
    }
    QueryContext* raw = ctx.get();
    queries_.push_back(std::move(ctx));
    submitted_count_.fetch_add(1, std::memory_order_relaxed);
    EnqueuePendingLocked(raw);
    if (threads_running_) {
      AdmitLocked(nullptr);
      idle_cv_.notify_all();
    }
    return raw->index;
  }

  void Start() {
    std::vector<std::thread> to_launch;
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      wall_.Reset();
      batch_deadline_ = Deadline::After(options_.batch_timeout_seconds);
      workers_.reserve(num_threads_);
      for (uint32_t i = 0; i < num_threads_; ++i) {
        workers_.push_back(
            std::make_unique<Worker>(i, options_.parallel.seed + i));
      }
      // Queries submitted before Start() are seeded directly into the
      // workers' deques (threads_running_ still false); everything after
      // this block goes through the injection queue.
      AdmitLocked(nullptr);
      threads_running_ = true;
      started_ = true;
    }
    threads_.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(workers_[i].get()); });
    }
  }

  void Seal() {
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      if (sealed_) return;
      sealed_ = true;
      if (threads_running_) AdmitLocked(nullptr);
      if (queued_count_ == 0) {
        all_admitted_.store(true, std::memory_order_release);
      }
    }
    idle_cv_.notify_all();
  }

  SchedulerReport Join() {
    for (auto& t : threads_) t.join();
    threads_.clear();
    joined_ = true;

    SchedulerReport report;
    report.queries.reserve(queries_.size());
    for (auto& q : queries_) report.queries.push_back(q->outcome);
    // Conservation of the spawn counter: SCAN seeds injected by external
    // submitter threads have no worker to account them to.
    if (!workers_.empty()) {
      workers_[0]->report.tasks_spawned += external_spawned_;
    }
    for (auto& w : workers_) report.workers.push_back(std::move(w->report));
    report.peak_task_bytes = memory_.peak_bytes();
    report.seconds = wall_.ElapsedSeconds();
    return report;
  }

  SchedulerReport Run() {
    Start();
    Seal();
    return Join();
  }

  bool Cancel(uint32_t query) {
    std::unique_lock<std::mutex> lock(admit_mutex_);
    QueryContext* ctx = queries_[query].get();
    if (ctx->finished.load(std::memory_order_acquire)) return false;
    ctx->cancel_requested.store(true, std::memory_order_relaxed);
    ctx->stop.store(true, std::memory_order_relaxed);
    if (!ctx->seeded) {
      // Still waiting for admission: resolve it right here rather than when
      // the window would eventually have reached it. Its queue entry stays
      // behind and is skipped (already finished) when popped. Before
      // Start() the run clock has not begun (wall_ resets there), so a
      // pre-start cancellation stamps 0 to stay inside the run's timeline.
      ctx->admit_index = admit_seq_++;
      ctx->admit_seconds = ctx->finish_seconds =
          started_ ? wall_.ElapsedSeconds() : 0;
      CompleteQuery(ctx);
      if (threads_running_) AdmitLocked(nullptr);
    }
    return true;
  }

  const QueryOutcome& WaitQuery(uint32_t query) {
    QueryContext* ctx = ContextFor(query);
    std::unique_lock<std::mutex> lock(finish_mutex_);
    finish_cv_.wait(lock, [ctx] {
      return ctx->finished.load(std::memory_order_acquire);
    });
    return ctx->outcome;
  }

  const QueryOutcome* TryGetQuery(uint32_t query) {
    QueryContext* ctx = ContextFor(query);
    if (!ctx->finished.load(std::memory_order_acquire)) return nullptr;
    return &ctx->outcome;
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> lock(finish_mutex_);
    finish_cv_.wait(lock, [this] {
      return finished_count_.load(std::memory_order_acquire) ==
             submitted_count_.load(std::memory_order_acquire);
    });
  }

  uint32_t num_threads() const { return num_threads_; }

 private:
  struct Worker {
    Worker(uint32_t id, uint64_t seed) : id(id), rng(seed) {}

    uint32_t id;
    WorkStealingDeque<Task*> deque;
    Rng rng;
    std::vector<EdgeId> embedding;      // SINK copy buffer
    std::vector<std::vector<EdgeId>> valid_at;  // Expand() output per depth
    std::vector<EdgeId> inline_prefix;  // quota-path partial embedding
    // Stats of the task currently executing; flushed into the owning
    // query's atomic sums when the task retires (so the per-candidate hot
    // path stays free of atomics).
    MatchStats task_stats;
    // Sparse per-plan expanders with a one-entry cache that skips the hash
    // lookup on the common task runs of one plan (LIFO scheduling keeps
    // runs long).
    std::unordered_map<const QueryPlan*, std::unique_ptr<Expander>> expanders;
    const QueryPlan* expander_key = nullptr;
    Expander* expander_cache = nullptr;
    WorkerReport report;
    uint64_t poll_counter = 0;
  };

  static QueryContext* Ctx(Task* t) {
    return static_cast<QueryContext*>(t->owner);
  }

  QueryContext* ContextFor(uint32_t query) {
    // queries_ may be reallocated by a concurrent Submit; the contexts
    // themselves are heap-stable.
    std::lock_guard<std::mutex> lock(admit_mutex_);
    return queries_[query].get();
  }

  Expander* ExpanderFor(Worker* w, QueryContext* ctx) {
    if (w->expander_key != ctx->plan) {
      auto& slot = w->expanders[ctx->plan];
      if (slot == nullptr) slot = std::make_unique<Expander>(data_, *ctx->plan);
      w->expander_key = ctx->plan;
      w->expander_cache = slot.get();
    }
    return w->expander_cache;
  }

  // Grows the per-depth buffers up front so no reference into valid_at is
  // ever invalidated by a deeper (inline) expansion resizing the vector.
  void EnsureDepthBuffers(Worker* w, uint32_t steps) {
    if (w->valid_at.size() < steps) w->valid_at.resize(steps);
    if (w->inline_prefix.size() < steps) w->inline_prefix.resize(steps);
  }

  void Spawn(Worker* w, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++w->report.tasks_spawned;
    w->deque.Push(t);
  }

  // Assembles the final outcome of a finished query and publishes it. The
  // caller guarantees single-writer access (either the worker that retired
  // the query's last task, or a thread holding admit_mutex_ for a query
  // that never seeded).
  void CompleteQuery(QueryContext* ctx) {
    QueryOutcome& out = ctx->outcome;
    out.stats.embeddings = ctx->embeddings_sum.load(std::memory_order_relaxed);
    out.stats.candidates = ctx->candidates_sum.load(std::memory_order_relaxed);
    out.stats.filtered = ctx->filtered_sum.load(std::memory_order_relaxed);
    out.stats.expansions = ctx->expansions_sum.load(std::memory_order_relaxed);
    out.stats.limit_hit = ctx->limit_hit.load(std::memory_order_relaxed);
    out.stats.timed_out =
        ctx->timeout_fired.load(std::memory_order_relaxed) &&
        ctx->work_dropped.load(std::memory_order_relaxed);
    out.stats.seconds =
        ctx->seeded ? ctx->finish_seconds - ctx->admit_seconds : 0;
    if (ctx->cancel_requested.load(std::memory_order_relaxed)) {
      out.status = QueryStatus::kCancelled;
    } else if (out.stats.timed_out) {
      out.status = QueryStatus::kTimeout;
    } else if (out.stats.limit_hit) {
      out.status = QueryStatus::kLimit;
    } else {
      out.status = QueryStatus::kOk;
    }
    out.admit_seconds = ctx->admit_seconds;
    out.finish_seconds = ctx->finish_seconds;
    out.admit_index = ctx->admit_index;
    finished_count_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(finish_mutex_);
      ctx->finished.store(true, std::memory_order_release);
    }
    finish_cv_.notify_all();
  }

  void Finish(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    memory_.OnFree(t->SizeBytes());
    Task::Free(t);
    if (ctx->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of this query retired: record its finish and publish the
      // outcome, then free the admission slot and seed waiting queries
      // *before* the global count below can reach zero, so the pool never
      // shuts down between two admissions.
      ctx->finish_seconds = wall_.ElapsedSeconds();
      CompleteQuery(ctx);
      std::lock_guard<std::mutex> lock(admit_mutex_);
      --inflight_;
      AdmitLocked(w);
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // ------------------------------------------------------------ admission --

  // Appends a submitted query to its policy's waiting structure. Callers
  // hold admit_mutex_.
  void EnqueuePendingLocked(QueryContext* ctx) {
    ++queued_count_;
    switch (options_.admission) {
      case AdmissionPolicy::kFifo:
        fifo_pending_.push_back(ctx);
        break;
      case AdmissionPolicy::kPriority:
        prio_pending_[ctx->priority].push_back(ctx);
        break;
      case AdmissionPolicy::kWeightedFair: {
        TenantState& ts = tenants_[ctx->tenant_id];
        if (ts.queue.empty()) {
          // A tenant (re)entering the system must not be able to claim the
          // virtual time it "saved" while absent; it restarts at the
          // current global virtual time (start-time fair queueing).
          ts.vtime = std::max(ts.vtime, global_vtime_);
        }
        ts.queue.push_back(ctx);
        break;
      }
    }
  }

  // Pops the next query to admit per the admission policy, skipping entries
  // that already finished (cancelled while queued). Returns nullptr when
  // nothing admissible remains. Callers hold admit_mutex_.
  QueryContext* PopNextLocked() {
    while (queued_count_ > 0) {
      QueryContext* ctx = nullptr;
      switch (options_.admission) {
        case AdmissionPolicy::kFifo:
          ctx = fifo_pending_.front();
          fifo_pending_.pop_front();
          break;
        case AdmissionPolicy::kPriority: {
          auto it = prio_pending_.begin();  // greatest priority first
          ctx = it->second.front();
          it->second.pop_front();
          if (it->second.empty()) prio_pending_.erase(it);
          break;
        }
        case AdmissionPolicy::kWeightedFair: {
          // Tenant with the least virtual time goes next; ties resolve to
          // the tenant whose head query was submitted first, so the order
          // is deterministic regardless of map iteration order.
          TenantState* best = nullptr;
          for (auto& [tenant, ts] : tenants_) {
            if (ts.queue.empty()) continue;
            if (best == nullptr || ts.vtime < best->vtime ||
                (ts.vtime == best->vtime &&
                 ts.queue.front()->index < best->queue.front()->index)) {
              best = &ts;
            }
          }
          if (best == nullptr) return nullptr;  // queued_count_ says otherwise
          ctx = best->queue.front();
          best->queue.pop_front();
          if (!ctx->finished.load(std::memory_order_acquire)) {
            // Charge the tenant only for queries that actually advance.
            global_vtime_ = best->vtime;
            best->vtime += 1.0 / ctx->weight;
          }
          break;
        }
      }
      if (ctx == nullptr) return nullptr;  // unreachable: switch is exhaustive
      --queued_count_;
      if (!ctx->finished.load(std::memory_order_acquire)) return ctx;
    }
    return nullptr;
  }

  // Admissions while the pool runs cannot Push into another worker's deque
  // (Chase-Lev Push is owner-only), so their SCAN ranges go through this
  // shared injection queue, which idle workers drain before resorting to
  // stealing. Callers hold admit_mutex_. Two properties hang off that lock:
  // the ranges spread over the pool even with work stealing disabled, and
  // no range is reachable — let alone retired — until the whole query is
  // seeded, so ctx->pending cannot transiently hit zero mid-seeding and run
  // the last-task path in Finish() early (which would double-free the
  // admission slot and wrap inflight_).
  void Inject(Worker* seeder, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (seeder != nullptr) {
      ++seeder->report.tasks_spawned;
    } else {
      ++external_spawned_;  // submissions from non-pool threads
    }
    inject_.push_back(t);
    inject_size_.fetch_add(1, std::memory_order_release);
  }

  Task* PopInject() {
    // Lock-free pre-check so idle workers spinning in WorkerLoop do not
    // hammer admit_mutex_ when nothing was injected.
    if (inject_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard<std::mutex> lock(admit_mutex_);
    if (inject_.empty()) return nullptr;
    Task* t = inject_.front();
    inject_.pop_front();
    inject_size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }

  // Admits queries in policy order until the window is full or none are
  // left. Callers hold admit_mutex_. `seeder == nullptr` for admissions not
  // performed by a pool worker (pre-start seeding, external Submit/Cancel
  // threads); before the threads launch, SCAN ranges are spread round-robin
  // over all workers' deques, afterwards they go through the injection
  // queue (see Inject()).
  void AdmitLocked(Worker* seeder) {
    const uint32_t window = options_.max_inflight_queries;
    while (queued_count_ > 0 && (window == 0 || inflight_ < window)) {
      QueryContext* ctx = PopNextLocked();
      if (ctx == nullptr) break;
      ctx->admit_index = admit_seq_++;
      ctx->admit_seconds = wall_.ElapsedSeconds();
      ctx->deadline = Deadline::After(ctx->timeout_seconds);
      if (ctx->stop.load(std::memory_order_relaxed)) {
        // Stopped before it ever ran (whole-run deadline): all of its work
        // is dropped by definition, unless it had none to begin with.
        if (ctx->scan_table != nullptr) {
          ctx->work_dropped.store(true, std::memory_order_relaxed);
        }
        ctx->finish_seconds = ctx->admit_seconds;
        CompleteQuery(ctx);
        continue;
      }
      if (ctx->scan_table == nullptr) {
        // Nothing matches the first step: done at admission.
        ctx->finish_seconds = ctx->admit_seconds;
        CompleteQuery(ctx);
        continue;
      }
      ctx->seeded = true;
      ++inflight_;
      const uint64_t total = ctx->scan_table->size();
      const uint64_t chunk = (total + num_threads_ - 1) / num_threads_;
      for (uint32_t w = 0; w < num_threads_; ++w) {
        const uint64_t lo = static_cast<uint64_t>(w) * chunk;
        if (lo >= total) break;
        const uint64_t hi = std::min<uint64_t>(lo + chunk, total);
        Task* t = Task::NewScan(ctx, static_cast<uint32_t>(lo),
                                static_cast<uint32_t>(hi));
        if (!threads_running_) {
          Spawn(workers_[(w + ctx->index) % num_threads_].get(), t);
        } else {
          Inject(seeder, t);
        }
      }
    }
    if (sealed_ && queued_count_ == 0) {
      all_admitted_.store(true, std::memory_order_release);
    }
  }

  // ------------------------------------------------------------ execution --

  void PollDeadlines(Worker* w, QueryContext* ctx) {
    if (++w->poll_counter < 1024) return;
    w->poll_counter = 0;
    if (ctx->deadline.Expired()) {
      ctx->timeout_fired.store(true, std::memory_order_relaxed);
      ctx->stop.store(true, std::memory_order_relaxed);
    }
    if (batch_deadline_.Expired() &&
        !batch_expired_.exchange(true, std::memory_order_relaxed)) {
      // queries_ grows under admit_mutex_ in streaming mode, so the
      // once-per-run sweep over it takes the lock.
      std::lock_guard<std::mutex> lock(admit_mutex_);
      for (auto& c : queries_) {
        if (c->finished.load(std::memory_order_acquire)) continue;
        c->timeout_fired.store(true, std::memory_order_relaxed);
        c->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  void EmitEmbedding(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                     uint32_t prefix_len, EdgeId last) {
    ++w->task_stats.embeddings;
    if (ctx->sink != nullptr) {
      if (w->embedding.size() < static_cast<size_t>(prefix_len) + 1) {
        w->embedding.resize(prefix_len + 1);
      }
      for (uint32_t i = 0; i < prefix_len; ++i) w->embedding[i] = prefix[i];
      w->embedding[prefix_len] = last;
      std::lock_guard<std::mutex> lock(ctx->sink_mutex);
      ctx->sink->Emit(w->embedding.data(), prefix_len + 1);
    }
    if (ctx->limit != 0) {
      const uint64_t total =
          ctx->emitted.fetch_add(1, std::memory_order_relaxed) + 1;
      if (total >= ctx->limit) {
        ctx->limit_hit.store(true, std::memory_order_relaxed);
        ctx->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Handles one child hyperedge `c` extending `prefix` (already validated):
  // emit if complete, queue the EXPAND task, or — when the query is over
  // its task quota — expand depth-first inline so its deque share stays
  // bounded (the work still happens, it just cannot bury other queries'
  // tasks under millions of queued expansions).
  void ProcessChild(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                    uint32_t prefix_len, EdgeId c) {
    if (prefix_len + 1 == ctx->plan->NumSteps()) {
      EmitEmbedding(w, ctx, prefix, prefix_len, c);
    } else if (options_.task_quota != 0 &&
               ctx->pending.load(std::memory_order_relaxed) >=
                   static_cast<int64_t>(options_.task_quota)) {
      for (uint32_t i = 0; i < prefix_len; ++i) w->inline_prefix[i] = prefix[i];
      w->inline_prefix[prefix_len] = c;
      ExpandInline(w, ctx, prefix_len + 1);
    } else {
      Spawn(w, Task::NewExpand(ctx, prefix, prefix_len, c));
    }
  }

  // Depth-first expansion of w->inline_prefix[0..len) without queueing
  // tasks. Recursion depth is bounded by the plan length; each depth owns
  // its valid buffer (EnsureDepthBuffers ran before any reference is held).
  void ExpandInline(Worker* w, QueryContext* ctx, uint32_t len) {
    std::vector<EdgeId>& valid = w->valid_at[len];
    ExpanderFor(w, ctx)->Expand(w->inline_prefix.data(), len, &valid,
                                &w->task_stats);
    const uint32_t steps = ctx->plan->NumSteps();
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      if (len + 1 == steps) {
        EmitEmbedding(w, ctx, w->inline_prefix.data(), len, valid[i]);
      } else {
        w->inline_prefix[len] = valid[i];
        ExpandInline(w, ctx, len + 1);
      }
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  void ExecuteScan(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    // Range splitting: push the upper half back (thieves take the oldest,
    // i.e. the largest, ranges first) until the range is small enough.
    // scan_grain clamps to >= 1: at grain 0 a 1-element range would split
    // into an identical copy of itself forever.
    const uint32_t grain = std::max(1u, options_.parallel.scan_grain);
    uint32_t lo = t->scan_lo;
    uint32_t hi = t->scan_hi;
    while (hi - lo > grain) {
      const uint32_t mid = lo + (hi - lo) / 2;
      Spawn(w, Task::NewScan(ctx, mid, hi));
      hi = mid;
    }
    // The first query hyperedge matches every hyperedge of its signature
    // table (Observation V.1); no validation is needed at step 0.
    uint32_t i = lo;
    for (; i < hi; ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, nullptr, 0, (*ctx->scan_table)[i]);
      PollDeadlines(w, ctx);
    }
    if (i < hi) ctx->work_dropped.store(true, std::memory_order_relaxed);
  }

  void ExecuteExpand(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    std::vector<EdgeId>& valid = w->valid_at[t->depth];
    ExpanderFor(w, ctx)->Expand(t->edges, t->depth, &valid, &w->task_stats);
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, t->edges, t->depth, valid[i]);
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  // Adds the just-executed task's counters to the owning query's sums (for
  // the per-query outcome) and the worker's report (for load-balance
  // accounting). Runs once per task, before Finish() decrements pending, so
  // the sums are complete when the last task retires.
  void FlushTaskStats(Worker* w, QueryContext* ctx) {
    const MatchStats& s = w->task_stats;
    if (s.embeddings != 0) {
      ctx->embeddings_sum.fetch_add(s.embeddings, std::memory_order_relaxed);
    }
    if (s.candidates != 0) {
      ctx->candidates_sum.fetch_add(s.candidates, std::memory_order_relaxed);
    }
    if (s.filtered != 0) {
      ctx->filtered_sum.fetch_add(s.filtered, std::memory_order_relaxed);
    }
    if (s.expansions != 0) {
      ctx->expansions_sum.fetch_add(s.expansions, std::memory_order_relaxed);
    }
    w->report.stats += s;
  }

  void Execute(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    if (ctx->stop.load(std::memory_order_relaxed)) {
      // Dropped, not run: this query's counts are now incomplete.
      ctx->work_dropped.store(true, std::memory_order_relaxed);
      return;
    }
    Timer busy;
    w->task_stats = MatchStats{};
    if (t->kind == Task::Kind::kScan) {
      ExecuteScan(w, t);
    } else {
      ExecuteExpand(w, t);
    }
    FlushTaskStats(w, ctx);
    ++w->report.tasks_executed;
    w->report.busy_seconds += busy.ElapsedSeconds();
  }

  // Steals up to half of a random victim's queue (Section VI.C). The first
  // stolen task is returned for immediate execution; the rest go into the
  // caller's own deque.
  Task* TrySteal(Worker* w) {
    if (num_threads_ < 2) return nullptr;
    for (uint32_t attempt = 0; attempt < 2 * num_threads_; ++attempt) {
      const uint32_t victim_id =
          static_cast<uint32_t>(w->rng.NextBounded(num_threads_));
      if (victim_id == w->id) continue;
      Worker* victim = workers_[victim_id].get();
      Task* first = nullptr;
      if (!victim->deque.Steal(&first)) continue;
      ++w->report.steals;
      int64_t extra = victim->deque.SizeApprox() / 2;
      Task* t = nullptr;
      while (extra-- > 0 && victim->deque.Steal(&t)) {
        w->deque.Push(t);
      }
      return first;
    }
    return nullptr;
  }

  void WorkerLoop(Worker* w) {
    uint32_t idle_rounds = 0;
    while (true) {
      // Finish() admits waiting queries before decrementing the global
      // pending count, so pending_ == 0 && all_admitted_ is a stable
      // termination condition.
      if (pending_.load(std::memory_order_acquire) == 0 &&
          all_admitted_.load(std::memory_order_acquire)) {
        break;
      }
      Task* t = nullptr;
      if (!w->deque.Pop(&t)) {
        // Freshly injected seed ranges first (they spread a newly admitted
        // query without depending on work stealing), then steal.
        t = PopInject();
        if (t == nullptr && options_.parallel.work_stealing) t = TrySteal(w);
      }
      if (t != nullptr) {
        Execute(w, t);
        Finish(w, t);
        idle_rounds = 0;
      } else if (++idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        // A long-lived service pool can be idle for a while between
        // submissions; park on the idle condvar instead of burning a core.
        // The timeout bounds the latency of wakeup paths that do not
        // notify (e.g. stealable work appearing in a peer's deque).
        std::unique_lock<std::mutex> lock(idle_mutex_);
        idle_cv_.wait_for(lock, std::chrono::microseconds(500));
        idle_rounds = 0;
      }
    }
  }

  const IndexedHypergraph& data_;
  const SchedulerOptions options_;
  const uint32_t num_threads_;
  Deadline batch_deadline_;
  Timer wall_;

  std::vector<std::unique_ptr<QueryContext>> queries_;  // admit_mutex_
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool joined_ = false;

  std::mutex admit_mutex_;
  bool threads_running_ = false;   // guarded by admit_mutex_
  bool sealed_ = false;            // guarded by admit_mutex_
  uint32_t inflight_ = 0;          // guarded by admit_mutex_
  size_t queued_count_ = 0;        // entries across the policy structures
  uint64_t admit_seq_ = 0;         // guarded by admit_mutex_
  uint64_t external_spawned_ = 0;  // guarded by admit_mutex_
  std::deque<QueryContext*> fifo_pending_;               // admit_mutex_
  std::map<int32_t, std::deque<QueryContext*>, std::greater<int32_t>>
      prio_pending_;                                     // admit_mutex_
  struct TenantState {
    double vtime = 0;
    std::deque<QueryContext*> queue;
  };
  std::unordered_map<uint32_t, TenantState> tenants_;    // admit_mutex_
  double global_vtime_ = 0;                              // admit_mutex_
  std::deque<Task*> inject_;  // mid-run SCAN seeds, guarded by admit_mutex_
  std::atomic<int64_t> inject_size_{0};
  std::atomic<bool> all_admitted_{false};
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> batch_expired_{false};
  std::atomic<uint64_t> submitted_count_{0};
  std::atomic<uint64_t> finished_count_{0};

  std::mutex finish_mutex_;              // guards finished publication
  std::condition_variable finish_cv_;    // broadcast on every query finish
  std::mutex idle_mutex_;                // parks idle workers
  std::condition_variable idle_cv_;      // notified on new admissible work

  TaskMemoryTracker memory_;
};

Scheduler::Scheduler(const IndexedHypergraph& data,
                     const SchedulerOptions& options)
    : impl_(std::make_unique<Impl>(data, options)) {}

Scheduler::~Scheduler() = default;

uint32_t Scheduler::Submit(const QueryPlan* plan,
                           const SubmitOptions& options) {
  return impl_->Submit(plan, options);
}

uint32_t Scheduler::Submit(const QueryPlan* plan, EmbeddingSink* sink) {
  SubmitOptions options;
  options.sink = sink;
  return impl_->Submit(plan, options);
}

void Scheduler::Start() { impl_->Start(); }

void Scheduler::Seal() { impl_->Seal(); }

SchedulerReport Scheduler::Join() { return impl_->Join(); }

SchedulerReport Scheduler::Run() { return impl_->Run(); }

bool Scheduler::Cancel(uint32_t query) { return impl_->Cancel(query); }

const QueryOutcome& Scheduler::WaitQuery(uint32_t query) {
  return impl_->WaitQuery(query);
}

const QueryOutcome* Scheduler::TryGetQuery(uint32_t query) {
  return impl_->TryGetQuery(query);
}

void Scheduler::WaitIdle() { impl_->WaitIdle(); }

uint32_t Scheduler::num_threads() const { return impl_->num_threads(); }

}  // namespace hgmatch
