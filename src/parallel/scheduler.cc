#include "parallel/scheduler.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/task.h"
#include "parallel/ws_deque.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hgmatch {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kTimeout: return "timeout";
    case QueryStatus::kLimit: return "limit";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kPlanError: return "plan-error";
    case QueryStatus::kRejected: return "rejected";
  }
  return "unknown";
}

namespace {

struct QuerySlot;

// Shared per-query state. Tasks are tagged with their context (Task::owner),
// so counters, limits and deadlines stay exact per query even while tasks of
// different queries mix in the same deques.
//
// Non-atomic fields written at admission (deadline, admit_seconds, seeded)
// are published to other workers through the structure that carries the
// query's SCAN tasks: pre-start admission pushes into the (not yet running)
// workers' deques, whose Pop/Steal synchronise with the Push, and admissions
// while the pool runs go through the injection queue, whose mutex orders the
// writes before any reader.
//
// The stat sums are flushed once per task (Impl::FlushTaskStats), not once
// per counter event, so the atomics are off the per-candidate hot path; the
// sums are complete exactly when the query's last task retires (every flush
// happens-before that task's pending decrement), which is when the outcome
// is assembled.
struct QueryContext {
  uint32_t index = 0;
  QuerySlot* slot = nullptr;  // owning slot (node-stable in the slot map)
  const QueryPlan* plan = nullptr;
  // The data graph this query runs against — the pool default or the
  // per-submission graph of the data-graph Submit overload.
  const IndexedHypergraph* data = nullptr;
  const EdgeSet* scan_table = nullptr;  // first-step signature table
  // Slice of the first-step table this query seeds (SubmitOptions::
  // scan_slice/scan_slices); [0, scan_table->size()) when unsliced.
  uint32_t scan_lo = 0;
  uint32_t scan_hi = 0;
  EmbeddingSink* sink = nullptr;
  std::mutex sink_mutex;

  // Effective per-query budgets and admission parameters, resolved against
  // the engine-wide defaults at Submit().
  double timeout_seconds = 0;
  uint64_t limit = 0;
  uint32_t tenant_id = 0;
  int32_t priority = 0;
  double weight = 1.0;
  double cost = 1.0;  // WFQ admission charge (SubmitOptions::cost)

  Deadline deadline;         // per-query budget, armed at admission
  double admit_seconds = 0;  // pool start -> admission
  // Written exactly once, by the worker that retires the query's last task
  // (pending can only reach zero once — children are spawned before their
  // parent task is retired).
  double finish_seconds = 0;
  uint64_t admit_index = 0;  // global admission sequence number
  bool seeded = false;
  // True while a policy waiting-queue entry points at this context; such a
  // context must stay allocated until the entry is popped even if the query
  // already resolved (cancelled/rejected while waiting). admit_mutex_.
  bool in_pending_queue = false;
  // Shed by the max_queued_queries bound; set before CompleteQuery on the
  // rejection path (same thread), read only by CompleteQuery.
  bool rejected = false;

  // Span/metric stamps on the process-monotonic clock (obs/trace.h).
  // submit/admit are published to the workers with the same fences as
  // admit_seconds (see the struct comment); first_task is written by the
  // one worker that wins the first_task_claimed exchange and read only
  // after the query's last pending decrement synchronised with that
  // worker's; last_task is written by the single worker that retires the
  // last task. `trace` gates only the span copy into the outcome — the
  // latency histograms are recorded for every query.
  bool trace = false;
  double submit_mono = 0;
  double admit_mono = 0;
  double first_task_mono = 0;
  double last_task_mono = 0;

  // Per-query completion hook (SubmitOptions::completion). Moved out of the
  // context into the deferred-fire list the moment the outcome is
  // published, which is what makes the exactly-once guarantee structural:
  // a query completes once, and the hook can only be taken once.
  std::function<void(const QueryOutcome&)> completion;

  std::atomic<uint64_t> emitted{0};
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  // Why two flags instead of a single timed_out: a deadline may fire while
  // the query's final tasks are mid-execution and still complete all their
  // counts. The query is only *reported* timed out when the deadline fired
  // AND some of its work was actually dropped, so exact counts are never
  // mislabelled.
  std::atomic<bool> timeout_fired{false};
  std::atomic<bool> work_dropped{false};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> first_task_claimed{false};

  // Per-task stat flushes; summed into the outcome when the query finishes.
  std::atomic<uint64_t> embeddings_sum{0};
  std::atomic<uint64_t> candidates_sum{0};
  std::atomic<uint64_t> filtered_sum{0};
  std::atomic<uint64_t> expansions_sum{0};
};

// One submission's bookkeeping slot: the slim outcome record plus (until
// the query finishes) the heavy execution context. Slots live in a
// node-based map keyed by submission index, so references are stable while
// the map grows and individual slots can be erased by Release() — the
// retention contract of a long-lived streaming service: heavy state is
// O(in-flight) automatically, slim records are O(not-yet-released).
struct QuerySlot {
  std::unique_ptr<QueryContext> ctx;  // reset the moment the query finishes
  QueryOutcome outcome;               // assembled by CompleteQuery
  std::atomic<bool> finished{false};
  // Release() arrived while a pending-queue entry still held ctx (a query
  // cancelled/rejected while waiting): erase the slot when that entry is
  // reaped. Guarded by admit_mutex_.
  bool release_on_reap = false;
};

}  // namespace

// One pool thread plus the streaming admission machinery. Worker state
// (expanders, depth buffers) is sparse per plan: a worker that never
// executes a task of plan p spends nothing on p.
class Scheduler::Impl {
 public:
  Impl(const IndexedHypergraph* data, const SchedulerOptions& options)
      : default_data_(data),
        options_(options),
        num_threads_(options.parallel.num_threads != 0
                         ? options.parallel.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())) {
    // Metric handles are resolved once here; the per-query hot paths only
    // touch the lock-free Add/Observe fast path.
    MetricsRegistry& reg = MetricsRegistry::Default();
    metric_submitted_ = reg.GetCounter("hgmatch_queries_submitted_total");
    metric_rejected_ =
        reg.GetCounter("hgmatch_rejected_total", "reason=\"queue-full\"");
    metric_queue_wait_ = reg.GetHistogram("hgmatch_queue_wait_seconds");
    metric_admission_wait_ =
        reg.GetHistogram("hgmatch_admission_wait_seconds");
    metric_first_task_ = reg.GetHistogram("hgmatch_first_task_seconds");
    metric_run_ = reg.GetHistogram("hgmatch_query_run_seconds");
    static constexpr QueryStatus kStatuses[] = {
        QueryStatus::kOk,        QueryStatus::kTimeout,
        QueryStatus::kLimit,     QueryStatus::kCancelled,
        QueryStatus::kPlanError, QueryStatus::kRejected,
    };
    for (QueryStatus s : kStatuses) {
      metric_status_[static_cast<size_t>(s)] = reg.GetCounter(
          "hgmatch_queries_finished_total",
          std::string("status=\"") + QueryStatusName(s) + "\"");
    }
  }

  ~Impl() {
    if (!started_ || joined_) return;
    // Abandoned while running (e.g. an exception unwound past Join): stop
    // every unfinished query and drain, so the threads can be joined.
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      for (auto& [index, slot] : queries_) {
        if (!slot.finished.load(std::memory_order_acquire)) {
          slot.ctx->cancel_requested.store(true, std::memory_order_relaxed);
          slot.ctx->stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    Seal();
    Join();
  }

  uint32_t Submit(const QueryPlan* plan, const IndexedHypergraph* data,
                  const SubmitOptions& so) {
    // Compiler-stamped plans only: uid 0 would collide with the workers'
    // empty-expander-cache sentinel and alias distinct plans in the
    // uid-keyed expander maps.
    assert(plan->uid != 0 && "submit plans built by BuildQueryPlan");
    assert(data != nullptr && "a data-less pool needs per-submit data");
    uint32_t index;
    bool notify = false;
    std::vector<PendingCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      index = next_query_index_++;
      QuerySlot& slot = queries_[index];
      auto ctx = std::make_unique<QueryContext>();
      ctx->index = index;
      ctx->slot = &slot;
      ctx->plan = plan;
      ctx->sink = so.sink;
      ctx->tenant_id = so.tenant_id;
      ctx->priority = so.priority;
      // A non-finite weight would zero the tenant's virtual-time increment
      // and starve every other tenant; fall back to the neutral share. The
      // cost charge gets the same protection.
      ctx->weight =
          (so.weight > 0 && std::isfinite(so.weight)) ? so.weight : 1.0;
      ctx->cost = (so.cost > 0 && std::isfinite(so.cost)) ? so.cost : 1.0;
      ctx->timeout_seconds = so.timeout_seconds < 0
                                 ? options_.parallel.timeout_seconds
                                 : so.timeout_seconds;
      ctx->limit = so.limit == SubmitOptions::kInheritLimit
                       ? options_.parallel.limit
                       : so.limit;
      ctx->completion = so.completion;
      ctx->trace = so.trace;
      ctx->submit_mono = MonotonicSeconds();
      ctx->data = data;
      const Partition* first =
          plan->NumSteps() > 0 ? data->FindPartition(plan->steps[0].signature)
                               : nullptr;
      if (first != nullptr && !first->edges().empty()) {
        // Clamp the requested slice into [0, table size); an empty slice
        // (every table smaller than scan_slices leaves some slices empty)
        // behaves exactly like an empty table: done at admission with zero
        // stats.
        const uint64_t total = first->edges().size();
        const uint64_t slices = std::max<uint32_t>(1, so.scan_slices);
        const uint64_t slice = std::min<uint64_t>(so.scan_slice, slices - 1);
        const uint64_t lo = total * slice / slices;
        const uint64_t hi = total * (slice + 1) / slices;
        if (lo < hi) {
          ctx->scan_table = &first->edges();
          ctx->scan_lo = static_cast<uint32_t>(lo);
          ctx->scan_hi = static_cast<uint32_t>(hi);
        }
      }
      QueryContext* raw = ctx.get();
      slot.ctx = std::move(ctx);
      submitted_count_.fetch_add(1, std::memory_order_relaxed);
      metric_submitted_->Add();

      // Queue-depth backpressure: once the pool runs, the waiting queue is
      // non-empty only while the admission window is full (AdmitLocked
      // drains it otherwise), so "window full and the queue at its bound"
      // means this submission could only wait — shed it instead of
      // queueing, before it costs any queue memory. Resolved synchronously:
      // the caller observes kRejected from the returned index immediately.
      const uint32_t window = options_.max_inflight_queries;
      if (threads_running_ && options_.max_queued_queries != 0 &&
          window != 0 && inflight_ >= window &&
          queued_count_ - queued_corpses_ >= options_.max_queued_queries) {
        raw->rejected = true;
        raw->admit_index = admit_seq_++;
        raw->admit_seconds = raw->finish_seconds = wall_.ElapsedSeconds();
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        metric_rejected_->Add();
        CompleteQuery(raw);
        QueueCompletionLocked(raw);
        RecycleContextLocked(raw);
      } else {
        EnqueuePendingLocked(raw);
        if (threads_running_) {
          AdmitLocked(nullptr);
          notify = true;
        }
      }
      fire.swap(deferred_completions_);
    }
    if (notify) idle_cv_.notify_all();
    FireCompletions(&fire);
    return index;
  }

  void Start() {
    std::vector<PendingCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      wall_.Reset();
      batch_deadline_ = Deadline::After(options_.batch_timeout_seconds);
      workers_.reserve(num_threads_);
      for (uint32_t i = 0; i < num_threads_; ++i) {
        workers_.push_back(
            std::make_unique<Worker>(i, options_.parallel.seed + i));
      }
      // Queries submitted before Start() are seeded directly into the
      // workers' deques (threads_running_ still false); everything after
      // this block goes through the injection queue.
      AdmitLocked(nullptr);
      threads_running_ = true;
      started_ = true;
      fire.swap(deferred_completions_);
    }
    FireCompletions(&fire);  // queries resolved at pre-start admission
    threads_.reserve(num_threads_);
    for (uint32_t i = 0; i < num_threads_; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(workers_[i].get()); });
    }
  }

  void Seal() {
    std::vector<PendingCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      if (sealed_) return;
      sealed_ = true;
      if (threads_running_) AdmitLocked(nullptr);
      if (queued_count_ == 0) {
        all_admitted_.store(true, std::memory_order_release);
      }
      fire.swap(deferred_completions_);
    }
    idle_cv_.notify_all();
    FireCompletions(&fire);
  }

  SchedulerReport Join() {
    for (auto& t : threads_) t.join();
    threads_.clear();
    joined_ = true;

    SchedulerReport report;
    {
      // Sized to the highest *retained* index: batch-style users never
      // release, so they get the full dense vector; a streaming service
      // that released every retrieved outcome gets a (near-)empty one
      // instead of an O(ever-submitted) allocation at shutdown. Released
      // slots below the highest retained index read default-initialised.
      std::lock_guard<std::mutex> lock(admit_mutex_);
      uint32_t dense_size = 0;
      for (auto& [index, slot] : queries_) {
        dense_size = std::max(dense_size, index + 1);
      }
      report.queries.resize(dense_size);
      for (auto& [index, slot] : queries_) {
        report.queries[index] = slot.outcome;
      }
    }
    // Conservation of the spawn counter: SCAN seeds injected by external
    // submitter threads have no worker to account them to.
    if (!workers_.empty()) {
      workers_[0]->report.tasks_spawned += external_spawned_;
    }
    for (auto& w : workers_) report.workers.push_back(std::move(w->report));
    report.peak_task_bytes = memory_.peak_bytes();
    report.seconds = wall_.ElapsedSeconds();
    return report;
  }

  SchedulerReport Run() {
    Start();
    Seal();
    return Join();
  }

  bool Cancel(uint32_t query) {
    std::vector<PendingCompletion> fire;
    {
      std::unique_lock<std::mutex> lock(admit_mutex_);
      auto it = queries_.find(query);
      if (it == queries_.end()) return false;  // released: long finished
      QuerySlot& slot = it->second;
      if (slot.finished.load(std::memory_order_acquire)) return false;
      QueryContext* ctx = slot.ctx.get();
      ctx->cancel_requested.store(true, std::memory_order_relaxed);
      ctx->stop.store(true, std::memory_order_relaxed);
      if (!ctx->seeded) {
        // Still waiting for admission: resolve it right here rather than
        // when the window would eventually have reached it. Its queue entry
        // stays behind and is skipped (already finished) when popped.
        // Before Start() the run clock has not begun (wall_ resets there),
        // so a pre-start cancellation stamps 0 to stay inside the run's
        // timeline.
        ctx->admit_index = admit_seq_++;
        ctx->admit_seconds = ctx->finish_seconds =
            started_ ? wall_.ElapsedSeconds() : 0;
        CompleteQuery(ctx);
        QueueCompletionLocked(ctx);
        if (ctx->in_pending_queue) {
          // Its queue entry is now a corpse: it still occupies the policy
          // structure until popped, but must no longer count against the
          // max_queued_queries backpressure bound.
          ++queued_corpses_;
        } else {
          RecycleContextLocked(ctx);
        }
        if (threads_running_) AdmitLocked(nullptr);
      }
      fire.swap(deferred_completions_);
    }
    FireCompletions(&fire);
    return true;
  }

  const QueryOutcome& WaitQuery(uint32_t query) {
    QuerySlot* slot = SlotFor(query);
    if (slot == nullptr) {
      // Waiting on a Release()d query is a contract violation (retrieval
      // and release must be serialised by the caller); fail soft with an
      // empty outcome rather than dereferencing a dead slot.
      static const QueryOutcome kReleased{};
      return kReleased;
    }
    std::unique_lock<std::mutex> lock(finish_mutex_);
    finish_cv_.wait(lock, [slot] {
      return slot->finished.load(std::memory_order_acquire);
    });
    return slot->outcome;
  }

  const QueryOutcome* WaitQueryFor(uint32_t query, double seconds) {
    QuerySlot* slot = SlotFor(query);
    if (slot == nullptr) return nullptr;
    std::unique_lock<std::mutex> lock(finish_mutex_);
    const bool done = finish_cv_.wait_for(
        lock, std::chrono::duration<double>(seconds > 0 ? seconds : 0),
        [slot] { return slot->finished.load(std::memory_order_acquire); });
    return done ? &slot->outcome : nullptr;
  }

  const QueryOutcome* TryGetQuery(uint32_t query) {
    QuerySlot* slot = SlotFor(query);
    if (slot == nullptr) return nullptr;
    if (!slot->finished.load(std::memory_order_acquire)) return nullptr;
    return &slot->outcome;
  }

  bool Release(uint32_t query) {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    auto it = queries_.find(query);
    if (it == queries_.end()) return false;
    if (!it->second.finished.load(std::memory_order_acquire)) return false;
    if (it->second.ctx != nullptr) {
      // The heavy context is still referenced — by a pending-queue corpse
      // (query cancelled/rejected while waiting) or by the worker that is
      // mid-way through its finish path; the slot follows the context out
      // when it is reaped.
      if (it->second.release_on_reap) return false;  // already released
      it->second.release_on_reap = true;
      return true;
    }
    queries_.erase(it);
    return true;
  }

  void RetirePlan(uint64_t plan_uid) {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    retired_plans_.push_back(plan_uid);
    // Trim the retire log to what the slowest worker has not consumed yet,
    // so it does not grow with ever-retired plans.
    uint64_t min_seen = retired_base_ + retired_plans_.size();
    for (auto& w : workers_) min_seen = std::min(min_seen, w->retire_seen);
    while (retired_base_ < min_seen && !retired_plans_.empty()) {
      retired_plans_.pop_front();
      ++retired_base_;
    }
    retired_version_.fetch_add(1, std::memory_order_release);
  }

  size_t LiveContexts() {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    size_t live = 0;
    for (auto& [index, slot] : queries_) live += slot.ctx != nullptr;
    return live;
  }

  size_t RetainedSlots() {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    return queries_.size();
  }

  uint64_t RejectedCount() const {
    return rejected_count_.load(std::memory_order_relaxed);
  }

  uint64_t FinishedCount() const {
    return finished_count_.load(std::memory_order_acquire);
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> lock(finish_mutex_);
    finish_cv_.wait(lock, [this] {
      return finished_count_.load(std::memory_order_acquire) ==
             submitted_count_.load(std::memory_order_acquire);
    });
  }

  uint32_t num_threads() const { return num_threads_; }

  const IndexedHypergraph* default_data() const { return default_data_; }

 private:
  struct Worker {
    Worker(uint32_t id, uint64_t seed) : id(id), rng(seed) {}

    uint32_t id;
    WorkStealingDeque<Task*> deque;
    Rng rng;
    std::vector<EdgeId> embedding;      // SINK copy buffer
    std::vector<std::vector<EdgeId>> valid_at;  // Expand() output per depth
    std::vector<EdgeId> inline_prefix;  // quota-path partial embedding
    // Stats of the task currently executing; flushed into the owning
    // query's atomic sums when the task retires (so the per-candidate hot
    // path stays free of atomics).
    MatchStats task_stats;
    // Sparse per-plan expanders with a one-entry cache that skips the hash
    // lookup on the common task runs of one plan (LIFO scheduling keeps
    // runs long). Keyed by QueryPlan::uid, never by address: a retired
    // plan's freed memory being reused for a new plan must not alias its
    // cached state.
    std::unordered_map<uint64_t, std::unique_ptr<Expander>> expanders;
    uint64_t expander_key = 0;  // uids are 1-based; 0 never matches
    Expander* expander_cache = nullptr;
    // Count of RetirePlan() entries this worker has consumed (absolute
    // position in the retire log; guarded by admit_mutex_) and the last
    // retire-log version observed (worker-local fast-path check).
    uint64_t retire_seen = 0;
    uint64_t retire_seen_version = 0;
    WorkerReport report;
    uint64_t poll_counter = 0;
  };

  static QueryContext* Ctx(Task* t) {
    return static_cast<QueryContext*>(t->owner);
  }

  QuerySlot* SlotFor(uint32_t query) {
    // The slot map grows under admit_mutex_; slots are node-stable.
    std::lock_guard<std::mutex> lock(admit_mutex_);
    auto it = queries_.find(query);
    return it == queries_.end() ? nullptr : &it->second;
  }

  Expander* ExpanderFor(Worker* w, QueryContext* ctx) {
    const uint64_t uid = ctx->plan->uid;
    if (w->expander_key != uid) {
      auto& slot = w->expanders[uid];
      if (slot == nullptr) {
        slot = std::make_unique<Expander>(*ctx->data, *ctx->plan);
      }
      w->expander_key = uid;
      w->expander_cache = slot.get();
    }
    return w->expander_cache;
  }

  // Drops this worker's cached expanders for every plan retired since the
  // worker last looked. Runs on the worker's own state, so the map mutation
  // is single-threaded; the retire log itself is read under admit_mutex_.
  void ReapRetiredPlans(Worker* w) {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    const uint64_t end = retired_base_ + retired_plans_.size();
    for (uint64_t i = std::max(w->retire_seen, retired_base_); i < end; ++i) {
      const uint64_t uid = retired_plans_[i - retired_base_];
      w->expanders.erase(uid);
      if (w->expander_key == uid) {
        w->expander_key = 0;
        w->expander_cache = nullptr;
      }
    }
    w->retire_seen = end;
  }

  // Grows the per-depth buffers up front so no reference into valid_at is
  // ever invalidated by a deeper (inline) expansion resizing the vector.
  void EnsureDepthBuffers(Worker* w, uint32_t steps) {
    if (w->valid_at.size() < steps) w->valid_at.resize(steps);
    if (w->inline_prefix.size() < steps) w->inline_prefix.resize(steps);
  }

  void Spawn(Worker* w, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ++w->report.tasks_spawned;
    w->deque.Push(t);
  }

  // Assembles the final outcome of a finished query and publishes it into
  // the query's slim slot. The caller guarantees single-writer access
  // (either the worker that retired the query's last task, or a thread
  // holding admit_mutex_ for a query that never seeded).
  void CompleteQuery(QueryContext* ctx) {
    QueryOutcome& out = ctx->slot->outcome;
    out.stats.embeddings = ctx->embeddings_sum.load(std::memory_order_relaxed);
    out.stats.candidates = ctx->candidates_sum.load(std::memory_order_relaxed);
    out.stats.filtered = ctx->filtered_sum.load(std::memory_order_relaxed);
    out.stats.expansions = ctx->expansions_sum.load(std::memory_order_relaxed);
    out.stats.limit_hit = ctx->limit_hit.load(std::memory_order_relaxed);
    out.stats.timed_out =
        ctx->timeout_fired.load(std::memory_order_relaxed) &&
        ctx->work_dropped.load(std::memory_order_relaxed);
    out.stats.seconds =
        ctx->seeded ? ctx->finish_seconds - ctx->admit_seconds : 0;
    if (ctx->rejected) {
      out.status = QueryStatus::kRejected;
    } else if (ctx->cancel_requested.load(std::memory_order_relaxed)) {
      out.status = QueryStatus::kCancelled;
    } else if (out.stats.timed_out) {
      out.status = QueryStatus::kTimeout;
    } else if (out.stats.limit_hit) {
      out.status = QueryStatus::kLimit;
    } else {
      out.status = QueryStatus::kOk;
    }
    out.admit_seconds = ctx->admit_seconds;
    out.finish_seconds = ctx->finish_seconds;
    out.admit_index = ctx->admit_index;
    metric_status_[static_cast<size_t>(out.status)]->Add();
    if (ctx->trace) {
      // Zero stamps mean "stage never happened" (a rejected query has only
      // submit, a cancelled-while-queued one has no admit) — the span
      // contract, not missing data.
      out.span.enabled = true;
      out.span.submit_seconds = ctx->submit_mono;
      out.span.admit_seconds = ctx->admit_mono;
      out.span.first_task_seconds = ctx->first_task_mono;
      out.span.last_task_seconds = ctx->last_task_mono;
    }
    {
      std::lock_guard<std::mutex> lock(finish_mutex_);
      ctx->slot->finished.store(true, std::memory_order_release);
      // Count strictly after the flag: an observer of the advanced count
      // must find the outcome retrievable, or a count-gated poller (the
      // wire server) could sweep too early and then never re-check. Under
      // finish_mutex_ so WaitIdle's predicate cannot miss its wakeup.
      finished_count_.fetch_add(1, std::memory_order_release);
    }
    finish_cv_.notify_all();
  }

  // One completion hook ready to fire, detached from its (possibly already
  // recycled) context: the hook plus a snapshot of the outcome it reports.
  // The snapshot makes firing independent of slot lifetime — a Release()
  // racing the fire cannot pull the outcome out from under the callback.
  struct PendingCompletion {
    std::function<void(const QueryOutcome&)> fn;
    QueryOutcome outcome;
  };

  // Detaches a completed query's hook into the deferred-fire list. Callers
  // hold admit_mutex_ and call this after CompleteQuery published the
  // outcome (so hooks always observe a retrievable outcome) and before the
  // context is recycled. Moving the hook out of the context is the
  // exactly-once mechanism: the second taker finds it empty.
  void QueueCompletionLocked(QueryContext* ctx) {
    if (!ctx->completion) return;
    deferred_completions_.push_back(
        {std::move(ctx->completion), ctx->slot->outcome});
  }

  // Invokes hooks harvested from deferred_completions_. Callers must NOT
  // hold any scheduler lock: the hook contract promises lock-free delivery
  // so hooks can re-enter the read-side API (TryGetQuery, LiveContexts).
  static void FireCompletions(std::vector<PendingCompletion>* fire) {
    for (PendingCompletion& p : *fire) p.fn(p.outcome);
    fire->clear();
  }

  // Frees the heavy context of a finished query (bounded retention: heavy
  // state lives exactly as long as the query). Callers hold admit_mutex_
  // and guarantee the query finished and no pending-queue entry points at
  // the context. Invalidates ctx.
  void RecycleContextLocked(QueryContext* ctx) {
    QuerySlot* slot = ctx->slot;
    const uint32_t index = ctx->index;
    slot->ctx.reset();
    if (slot->release_on_reap) queries_.erase(index);
  }

  void Finish(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    memory_.OnFree(t->SizeBytes());
    Task::Free(t);
    if (ctx->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of this query retired: record its finish and publish the
      // outcome, then free the admission slot and seed waiting queries
      // *before* the global count below can reach zero, so the pool never
      // shuts down between two admissions.
      ctx->finish_seconds = wall_.ElapsedSeconds();
      ctx->last_task_mono = MonotonicSeconds();
      if (ctx->first_task_mono > 0) {
        metric_run_->Observe(ctx->last_task_mono - ctx->first_task_mono);
      }
      CompleteQuery(ctx);
      std::vector<PendingCompletion> fire;
      {
        std::lock_guard<std::mutex> lock(admit_mutex_);
        --inflight_;
        AdmitLocked(w);
        QueueCompletionLocked(ctx);
        RecycleContextLocked(ctx);  // frees ctx; must stay the last use
        fire.swap(deferred_completions_);
      }
      FireCompletions(&fire);  // this query's hook + any admit-resolved ones
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // ------------------------------------------------------------ admission --

  // Appends a submitted query to its policy's waiting structure. Callers
  // hold admit_mutex_.
  void EnqueuePendingLocked(QueryContext* ctx) {
    ++queued_count_;
    ctx->in_pending_queue = true;
    switch (options_.admission) {
      case AdmissionPolicy::kFifo:
        fifo_pending_.push_back(ctx);
        break;
      case AdmissionPolicy::kPriority:
        prio_pending_[ctx->priority].push_back(ctx);
        break;
      case AdmissionPolicy::kWeightedFair: {
        TenantState& ts = tenants_[ctx->tenant_id];
        if (ts.queue.empty()) {
          // A tenant (re)entering the system must not be able to claim the
          // virtual time it "saved" while absent; it restarts at the
          // current global virtual time (start-time fair queueing).
          ts.vtime = std::max(ts.vtime, global_vtime_);
        }
        ts.queue.push_back(ctx);
        break;
      }
    }
  }

  // Pops the next query to admit per the admission policy, skipping entries
  // that already finished (cancelled while queued). Returns nullptr when
  // nothing admissible remains. Callers hold admit_mutex_.
  QueryContext* PopNextLocked() {
    while (queued_count_ > 0) {
      QueryContext* ctx = nullptr;
      switch (options_.admission) {
        case AdmissionPolicy::kFifo:
          ctx = fifo_pending_.front();
          fifo_pending_.pop_front();
          break;
        case AdmissionPolicy::kPriority: {
          auto it = prio_pending_.begin();  // greatest priority first
          ctx = it->second.front();
          it->second.pop_front();
          if (it->second.empty()) prio_pending_.erase(it);
          break;
        }
        case AdmissionPolicy::kWeightedFair: {
          // Tenant with the least virtual time goes next; ties resolve to
          // the tenant whose head query was submitted first, so the order
          // is deterministic regardless of map iteration order.
          TenantState* best = nullptr;
          uint32_t best_tenant = 0;
          for (auto& [tenant, ts] : tenants_) {
            if (ts.queue.empty()) continue;
            if (best == nullptr || ts.vtime < best->vtime ||
                (ts.vtime == best->vtime &&
                 ts.queue.front()->index < best->queue.front()->index)) {
              best = &ts;
              best_tenant = tenant;
            }
          }
          if (best == nullptr) return nullptr;  // queued_count_ says otherwise
          ctx = best->queue.front();
          best->queue.pop_front();
          if (!ctx->slot->finished.load(std::memory_order_acquire)) {
            // Charge the tenant only for queries that actually advance, by
            // the query's admission cost (cost-aware WFQ: the service sets
            // cost to the plan's measured task count; 1 when unknown).
            global_vtime_ = best->vtime;
            best->vtime += ctx->cost / ctx->weight;
          }
          // Bounded tenant state: a drained tenant whose virtual time is
          // not ahead of the global clock would re-enter at the global
          // clock anyway (start-time fair queueing), so its entry is pure
          // reconstructible state — drop it, keeping the map sized by
          // active tenants instead of every tenant id ever seen (a remote
          // client can mint ids freely). A tenant still "in debt" (vtime
          // ahead of global) keeps its entry until the clock catches up,
          // so bursting and rejoining cannot shed the debt. O(1) targeted
          // check per pop; drained-in-debt stragglers are reaped by an
          // amortised sweep when the map has doubled.
          if (best->queue.empty() && best->vtime <= global_vtime_) {
            tenants_.erase(best_tenant);
          }
          if (tenants_.size() >= 16 &&
              tenants_.size() >= 2 * last_tenant_sweep_size_) {
            std::erase_if(tenants_, [this](const auto& entry) {
              return entry.second.queue.empty() &&
                     entry.second.vtime <= global_vtime_;
            });
            last_tenant_sweep_size_ = tenants_.size();
          }
          break;
        }
      }
      if (ctx == nullptr) return nullptr;  // unreachable: switch is exhaustive
      --queued_count_;
      ctx->in_pending_queue = false;
      if (!ctx->slot->finished.load(std::memory_order_acquire)) return ctx;
      // Reap a corpse: the query resolved (cancelled while waiting) before
      // being popped; its heavy context was kept alive only for this
      // pointer.
      --queued_corpses_;
      RecycleContextLocked(ctx);
    }
    return nullptr;
  }

  // Admissions while the pool runs cannot Push into another worker's deque
  // (Chase-Lev Push is owner-only), so their SCAN ranges go through this
  // shared injection queue, which idle workers drain before resorting to
  // stealing. Callers hold admit_mutex_. Two properties hang off that lock:
  // the ranges spread over the pool even with work stealing disabled, and
  // no range is reachable — let alone retired — until the whole query is
  // seeded, so ctx->pending cannot transiently hit zero mid-seeding and run
  // the last-task path in Finish() early (which would double-free the
  // admission slot and wrap inflight_).
  void Inject(Worker* seeder, Task* t) {
    memory_.OnAlloc(t->SizeBytes());
    Ctx(t)->pending.fetch_add(1, std::memory_order_acq_rel);
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (seeder != nullptr) {
      ++seeder->report.tasks_spawned;
    } else {
      ++external_spawned_;  // submissions from non-pool threads
    }
    inject_.push_back(t);
    inject_size_.fetch_add(1, std::memory_order_release);
  }

  Task* PopInject() {
    // Lock-free pre-check so idle workers spinning in WorkerLoop do not
    // hammer admit_mutex_ when nothing was injected.
    if (inject_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard<std::mutex> lock(admit_mutex_);
    if (inject_.empty()) return nullptr;
    Task* t = inject_.front();
    inject_.pop_front();
    inject_size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }

  // Admits queries in policy order until the window is full or none are
  // left. Callers hold admit_mutex_. `seeder == nullptr` for admissions not
  // performed by a pool worker (pre-start seeding, external Submit/Cancel
  // threads); before the threads launch, SCAN ranges are spread round-robin
  // over all workers' deques, afterwards they go through the injection
  // queue (see Inject()).
  void AdmitLocked(Worker* seeder) {
    const uint32_t window = options_.max_inflight_queries;
    while (queued_count_ > 0 && (window == 0 || inflight_ < window)) {
      QueryContext* ctx = PopNextLocked();
      if (ctx == nullptr) break;
      ctx->admit_index = admit_seq_++;
      ctx->admit_seconds = wall_.ElapsedSeconds();
      ctx->admit_mono = MonotonicSeconds();
      metric_queue_wait_->Observe(ctx->admit_mono - ctx->submit_mono);
      ctx->deadline = Deadline::After(ctx->timeout_seconds);
      if (ctx->stop.load(std::memory_order_relaxed)) {
        // Stopped before it ever ran (whole-run deadline): all of its work
        // is dropped by definition, unless it had none to begin with.
        if (ctx->scan_table != nullptr) {
          ctx->work_dropped.store(true, std::memory_order_relaxed);
        }
        ctx->finish_seconds = ctx->admit_seconds;
        CompleteQuery(ctx);
        QueueCompletionLocked(ctx);
        RecycleContextLocked(ctx);
        continue;
      }
      if (ctx->scan_table == nullptr) {
        // Nothing matches the first step: done at admission.
        ctx->finish_seconds = ctx->admit_seconds;
        CompleteQuery(ctx);
        QueueCompletionLocked(ctx);
        RecycleContextLocked(ctx);
        continue;
      }
      ctx->seeded = true;
      ++inflight_;
      // Seed only the query's slice of the table (the whole table when
      // unsliced); SCAN task ranges are absolute table indices.
      const uint64_t total = ctx->scan_hi - ctx->scan_lo;
      const uint64_t chunk = (total + num_threads_ - 1) / num_threads_;
      for (uint32_t w = 0; w < num_threads_; ++w) {
        const uint64_t lo = ctx->scan_lo + static_cast<uint64_t>(w) * chunk;
        if (lo >= ctx->scan_hi) break;
        const uint64_t hi = std::min<uint64_t>(lo + chunk, ctx->scan_hi);
        Task* t = Task::NewScan(ctx, static_cast<uint32_t>(lo),
                                static_cast<uint32_t>(hi));
        if (!threads_running_) {
          Spawn(workers_[(w + ctx->index) % num_threads_].get(), t);
        } else {
          Inject(seeder, t);
        }
      }
    }
    if (sealed_ && queued_count_ == 0) {
      all_admitted_.store(true, std::memory_order_release);
    }
  }

  // ------------------------------------------------------------ execution --

  void PollDeadlines(Worker* w, QueryContext* ctx) {
    if (++w->poll_counter < 1024) return;
    w->poll_counter = 0;
    if (ctx->deadline.Expired()) {
      ctx->timeout_fired.store(true, std::memory_order_relaxed);
      ctx->stop.store(true, std::memory_order_relaxed);
    }
    if (batch_deadline_.Expired() &&
        !batch_expired_.exchange(true, std::memory_order_relaxed)) {
      // queries_ grows under admit_mutex_ in streaming mode, so the
      // once-per-run sweep over it takes the lock.
      std::lock_guard<std::mutex> lock(admit_mutex_);
      for (auto& [index, slot] : queries_) {
        if (slot.finished.load(std::memory_order_acquire)) continue;
        slot.ctx->timeout_fired.store(true, std::memory_order_relaxed);
        slot.ctx->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  void EmitEmbedding(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                     uint32_t prefix_len, EdgeId last) {
    ++w->task_stats.embeddings;
    if (ctx->sink != nullptr) {
      if (w->embedding.size() < static_cast<size_t>(prefix_len) + 1) {
        w->embedding.resize(prefix_len + 1);
      }
      for (uint32_t i = 0; i < prefix_len; ++i) w->embedding[i] = prefix[i];
      w->embedding[prefix_len] = last;
      std::lock_guard<std::mutex> lock(ctx->sink_mutex);
      ctx->sink->Emit(w->embedding.data(), prefix_len + 1);
    }
    if (ctx->limit != 0) {
      const uint64_t total =
          ctx->emitted.fetch_add(1, std::memory_order_relaxed) + 1;
      if (total >= ctx->limit) {
        ctx->limit_hit.store(true, std::memory_order_relaxed);
        ctx->stop.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Handles one child hyperedge `c` extending `prefix` (already validated):
  // emit if complete, queue the EXPAND task, or — when the query is over
  // its task quota — expand depth-first inline so its deque share stays
  // bounded (the work still happens, it just cannot bury other queries'
  // tasks under millions of queued expansions).
  void ProcessChild(Worker* w, QueryContext* ctx, const EdgeId* prefix,
                    uint32_t prefix_len, EdgeId c) {
    if (prefix_len + 1 == ctx->plan->NumSteps()) {
      EmitEmbedding(w, ctx, prefix, prefix_len, c);
    } else if (options_.task_quota != 0 &&
               ctx->pending.load(std::memory_order_relaxed) >=
                   static_cast<int64_t>(options_.task_quota)) {
      for (uint32_t i = 0; i < prefix_len; ++i) w->inline_prefix[i] = prefix[i];
      w->inline_prefix[prefix_len] = c;
      ExpandInline(w, ctx, prefix_len + 1);
    } else {
      Spawn(w, Task::NewExpand(ctx, prefix, prefix_len, c));
    }
  }

  // Depth-first expansion of w->inline_prefix[0..len) without queueing
  // tasks. Recursion depth is bounded by the plan length; each depth owns
  // its valid buffer (EnsureDepthBuffers ran before any reference is held).
  void ExpandInline(Worker* w, QueryContext* ctx, uint32_t len) {
    std::vector<EdgeId>& valid = w->valid_at[len];
    ExpanderFor(w, ctx)->Expand(w->inline_prefix.data(), len, &valid,
                                &w->task_stats);
    const uint32_t steps = ctx->plan->NumSteps();
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      if (len + 1 == steps) {
        EmitEmbedding(w, ctx, w->inline_prefix.data(), len, valid[i]);
      } else {
        w->inline_prefix[len] = valid[i];
        ExpandInline(w, ctx, len + 1);
      }
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  void ExecuteScan(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    // Range splitting: push the upper half back (thieves take the oldest,
    // i.e. the largest, ranges first) until the range is small enough.
    // scan_grain clamps to >= 1: at grain 0 a 1-element range would split
    // into an identical copy of itself forever.
    const uint32_t grain = std::max(1u, options_.parallel.scan_grain);
    uint32_t lo = t->scan_lo;
    uint32_t hi = t->scan_hi;
    while (hi - lo > grain) {
      const uint32_t mid = lo + (hi - lo) / 2;
      Spawn(w, Task::NewScan(ctx, mid, hi));
      hi = mid;
    }
    // The first query hyperedge matches every hyperedge of its signature
    // table (Observation V.1); no validation is needed at step 0.
    uint32_t i = lo;
    for (; i < hi; ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, nullptr, 0, (*ctx->scan_table)[i]);
      PollDeadlines(w, ctx);
    }
    if (i < hi) ctx->work_dropped.store(true, std::memory_order_relaxed);
  }

  void ExecuteExpand(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    EnsureDepthBuffers(w, ctx->plan->NumSteps());
    std::vector<EdgeId>& valid = w->valid_at[t->depth];
    ExpanderFor(w, ctx)->Expand(t->edges, t->depth, &valid, &w->task_stats);
    size_t i = 0;
    for (; i < valid.size(); ++i) {
      if (ctx->stop.load(std::memory_order_relaxed)) break;
      ProcessChild(w, ctx, t->edges, t->depth, valid[i]);
    }
    if (i < valid.size()) {
      ctx->work_dropped.store(true, std::memory_order_relaxed);
    }
    PollDeadlines(w, ctx);
  }

  // Adds the just-executed task's counters to the owning query's sums (for
  // the per-query outcome) and the worker's report (for load-balance
  // accounting). Runs once per task, before Finish() decrements pending, so
  // the sums are complete when the last task retires.
  void FlushTaskStats(Worker* w, QueryContext* ctx) {
    const MatchStats& s = w->task_stats;
    if (s.embeddings != 0) {
      ctx->embeddings_sum.fetch_add(s.embeddings, std::memory_order_relaxed);
    }
    if (s.candidates != 0) {
      ctx->candidates_sum.fetch_add(s.candidates, std::memory_order_relaxed);
    }
    if (s.filtered != 0) {
      ctx->filtered_sum.fetch_add(s.filtered, std::memory_order_relaxed);
    }
    if (s.expansions != 0) {
      ctx->expansions_sum.fetch_add(s.expansions, std::memory_order_relaxed);
    }
    w->report.stats += s;
  }

  void Execute(Worker* w, Task* t) {
    QueryContext* ctx = Ctx(t);
    if (ctx->stop.load(std::memory_order_relaxed)) {
      // Dropped, not run: this query's counts are now incomplete.
      ctx->work_dropped.store(true, std::memory_order_relaxed);
      return;
    }
    Timer busy;
    if (!ctx->first_task_claimed.load(std::memory_order_relaxed) &&
        !ctx->first_task_claimed.exchange(true, std::memory_order_relaxed)) {
      // First task of this query to actually execute: the stamp feeds the
      // span and the scheduling-latency histograms (submit -> first task
      // end to end, admit -> first task for the post-admission wait).
      ctx->first_task_mono = MonotonicSeconds();
      metric_first_task_->Observe(ctx->first_task_mono - ctx->submit_mono);
      metric_admission_wait_->Observe(ctx->first_task_mono -
                                      ctx->admit_mono);
    }
    w->task_stats = MatchStats{};
    if (t->kind == Task::Kind::kScan) {
      ExecuteScan(w, t);
    } else {
      ExecuteExpand(w, t);
    }
    FlushTaskStats(w, ctx);
    ++w->report.tasks_executed;
    w->report.busy_seconds += busy.ElapsedSeconds();
  }

  // Steals up to half of a random victim's queue (Section VI.C). The first
  // stolen task is returned for immediate execution; the rest go into the
  // caller's own deque.
  Task* TrySteal(Worker* w) {
    if (num_threads_ < 2) return nullptr;
    for (uint32_t attempt = 0; attempt < 2 * num_threads_; ++attempt) {
      const uint32_t victim_id =
          static_cast<uint32_t>(w->rng.NextBounded(num_threads_));
      if (victim_id == w->id) continue;
      Worker* victim = workers_[victim_id].get();
      Task* first = nullptr;
      if (!victim->deque.Steal(&first)) continue;
      ++w->report.steals;
      int64_t extra = victim->deque.SizeApprox() / 2;
      Task* t = nullptr;
      while (extra-- > 0 && victim->deque.Steal(&t)) {
        w->deque.Push(t);
      }
      return first;
    }
    return nullptr;
  }

  void WorkerLoop(Worker* w) {
    uint32_t idle_rounds = 0;
    while (true) {
      // Finish() admits waiting queries before decrementing the global
      // pending count, so pending_ == 0 && all_admitted_ is a stable
      // termination condition.
      if (pending_.load(std::memory_order_acquire) == 0 &&
          all_admitted_.load(std::memory_order_acquire)) {
        break;
      }
      if (retired_version_.load(std::memory_order_acquire) !=
          w->retire_seen_version) {
        w->retire_seen_version =
            retired_version_.load(std::memory_order_acquire);
        ReapRetiredPlans(w);
      }
      Task* t = nullptr;
      if (!w->deque.Pop(&t)) {
        // Freshly injected seed ranges first (they spread a newly admitted
        // query without depending on work stealing), then steal.
        t = PopInject();
        if (t == nullptr && options_.parallel.work_stealing) t = TrySteal(w);
      }
      if (t != nullptr) {
        Execute(w, t);
        Finish(w, t);
        idle_rounds = 0;
      } else if (++idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        // A long-lived service pool can be idle for a while between
        // submissions; park on the idle condvar instead of burning a core.
        // The timeout bounds the latency of wakeup paths that do not
        // notify (e.g. stealable work appearing in a peer's deque).
        std::unique_lock<std::mutex> lock(idle_mutex_);
        idle_cv_.wait_for(lock, std::chrono::microseconds(500));
        idle_rounds = 0;
      }
    }
  }

  // Pool-default data graph; null for a shared (per-submit data) pool.
  const IndexedHypergraph* const default_data_;
  const SchedulerOptions options_;
  const uint32_t num_threads_;
  Deadline batch_deadline_;
  Timer wall_;

  // Slot map of every not-yet-released submission, keyed by submission
  // index (indices are never reused). Node-based so slot references stay
  // valid while it grows and shrinks. Guarded by admit_mutex_.
  std::unordered_map<uint32_t, QuerySlot> queries_;
  uint32_t next_query_index_ = 0;  // admit_mutex_
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool joined_ = false;

  std::mutex admit_mutex_;
  bool threads_running_ = false;   // guarded by admit_mutex_
  bool sealed_ = false;            // guarded by admit_mutex_
  uint32_t inflight_ = 0;          // guarded by admit_mutex_
  size_t queued_count_ = 0;        // entries across the policy structures
  size_t queued_corpses_ = 0;      // of which: already resolved (cancelled)
  uint64_t admit_seq_ = 0;         // guarded by admit_mutex_
  uint64_t external_spawned_ = 0;  // guarded by admit_mutex_
  std::deque<QueryContext*> fifo_pending_;               // admit_mutex_
  std::map<int32_t, std::deque<QueryContext*>, std::greater<int32_t>>
      prio_pending_;                                     // admit_mutex_
  struct TenantState {
    double vtime = 0;
    std::deque<QueryContext*> queue;
  };
  std::unordered_map<uint32_t, TenantState> tenants_;    // admit_mutex_
  size_t last_tenant_sweep_size_ = 0;                    // admit_mutex_
  double global_vtime_ = 0;                              // admit_mutex_
  std::deque<Task*> inject_;  // mid-run SCAN seeds, guarded by admit_mutex_
  std::atomic<int64_t> inject_size_{0};
  // Completion hooks of queries that finalised inside the current
  // admit_mutex_ critical section, awaiting lock-free delivery. Every code
  // path that can append (Submit, Cancel, Seal, Start, Finish — directly
  // or through AdmitLocked) drains the list into a local vector before
  // releasing the lock and fires it after, so entries never outlive the
  // critical section that produced them. Guarded by admit_mutex_.
  std::vector<PendingCompletion> deferred_completions_;
  // Retire log of plan uids whose cached per-worker state is obsolete;
  // workers consume it lazily (ReapRetiredPlans). Trimmed to the slowest
  // worker. Guarded by admit_mutex_; the version is the lock-free signal.
  std::deque<uint64_t> retired_plans_;
  uint64_t retired_base_ = 0;
  std::atomic<uint64_t> retired_version_{0};
  std::atomic<uint64_t> rejected_count_{0};
  std::atomic<bool> all_admitted_{false};
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> batch_expired_{false};
  std::atomic<uint64_t> submitted_count_{0};
  std::atomic<uint64_t> finished_count_{0};

  std::mutex finish_mutex_;              // guards finished publication
  std::condition_variable finish_cv_;    // broadcast on every query finish
  std::mutex idle_mutex_;                // parks idle workers
  std::condition_variable idle_cv_;      // notified on new admissible work

  // Registry handles (resolved once in the constructor; see obs/metrics.h).
  Counter* metric_submitted_ = nullptr;
  Counter* metric_rejected_ = nullptr;
  Counter* metric_status_[6] = {};
  Histogram* metric_queue_wait_ = nullptr;
  Histogram* metric_admission_wait_ = nullptr;
  Histogram* metric_first_task_ = nullptr;
  Histogram* metric_run_ = nullptr;

  TaskMemoryTracker memory_;
};

Scheduler::Scheduler(const IndexedHypergraph& data,
                     const SchedulerOptions& options)
    : impl_(std::make_unique<Impl>(&data, options)) {}

Scheduler::Scheduler(const SchedulerOptions& options)
    : impl_(std::make_unique<Impl>(nullptr, options)) {}

Scheduler::~Scheduler() = default;

uint32_t Scheduler::Submit(const QueryPlan* plan,
                           const SubmitOptions& options) {
  return impl_->Submit(plan, impl_->default_data(), options);
}

uint32_t Scheduler::Submit(const QueryPlan* plan,
                           const IndexedHypergraph& data,
                           const SubmitOptions& options) {
  return impl_->Submit(plan, &data, options);
}

uint32_t Scheduler::Submit(const QueryPlan* plan, EmbeddingSink* sink) {
  SubmitOptions options;
  options.sink = sink;
  return impl_->Submit(plan, impl_->default_data(), options);
}

void Scheduler::Start() { impl_->Start(); }

void Scheduler::Seal() { impl_->Seal(); }

SchedulerReport Scheduler::Join() { return impl_->Join(); }

SchedulerReport Scheduler::Run() { return impl_->Run(); }

bool Scheduler::Cancel(uint32_t query) { return impl_->Cancel(query); }

const QueryOutcome& Scheduler::WaitQuery(uint32_t query) {
  return impl_->WaitQuery(query);
}

const QueryOutcome* Scheduler::WaitQueryFor(uint32_t query, double seconds) {
  return impl_->WaitQueryFor(query, seconds);
}

const QueryOutcome* Scheduler::TryGetQuery(uint32_t query) {
  return impl_->TryGetQuery(query);
}

bool Scheduler::Release(uint32_t query) { return impl_->Release(query); }

void Scheduler::RetirePlan(uint64_t plan_uid) { impl_->RetirePlan(plan_uid); }

size_t Scheduler::LiveContexts() { return impl_->LiveContexts(); }

size_t Scheduler::RetainedSlots() { return impl_->RetainedSlots(); }

uint64_t Scheduler::RejectedCount() const { return impl_->RejectedCount(); }

uint64_t Scheduler::FinishedCount() const { return impl_->FinishedCount(); }

void Scheduler::WaitIdle() { impl_->WaitIdle(); }

uint32_t Scheduler::num_threads() const { return impl_->num_threads(); }

}  // namespace hgmatch
