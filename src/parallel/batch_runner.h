#ifndef HGMATCH_PARALLEL_BATCH_RUNNER_H_
#define HGMATCH_PARALLEL_BATCH_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/result.h"
#include "parallel/executor.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the batch execution engine.
struct BatchOptions {
  /// Pool configuration plus the *per-query* timeout/limit. Because all
  /// queries of a batch are admitted simultaneously, per-query timeouts are
  /// measured from batch start — under heavy inter-query sharing this is
  /// also each query's end-to-end latency budget.
  ParallelOptions parallel;

  /// Whole-batch wall-clock timeout in seconds; <= 0 disables. When it
  /// fires, unfinished queries report timed_out (conservatively: a query
  /// whose last task is mid-execution at the expiry instant may be marked
  /// timed_out even though its counts end up complete).
  double batch_timeout_seconds = 0;
};

/// Outcome of one query of a batch. Entries of BatchResult::queries appear
/// in input order regardless of completion order (deterministic ordering).
struct BatchQueryResult {
  /// Planning outcome; when not ok the query was never executed and stats
  /// are all-zero.
  Status status;

  /// Per-query counters, exactly comparable to a standalone run of the same
  /// query. `seconds` is the time from batch start until the last task of
  /// this query finished.
  MatchStats stats;
};

/// Aggregate outcome of a batch run.
struct BatchResult {
  std::vector<BatchQueryResult> queries;  // input order
  MatchStats total;                       // summed over queries
  std::vector<WorkerReport> workers;      // size = pool threads
  uint64_t peak_task_bytes = 0;           // across all concurrent queries
  double seconds = 0;                     // batch wall time

  /// Queries fully completed (planned, not timed out, no limit hit).
  uint64_t completed = 0;

  /// Batch throughput: completed / seconds (0 when nothing completed).
  double QueriesPerSecond() const {
    return seconds > 0 ? static_cast<double>(completed) / seconds : 0;
  }
};

/// Runs a set of queries against one indexed data hypergraph on a single
/// shared work-stealing pool (Section VI.C), layering inter-query
/// parallelism on the intra-query task model: every query is compiled to a
/// plan, its SCAN ranges are seeded round-robin across the workers, and from
/// then on tasks of all queries mix freely in the same Chase-Lev deques, so
/// an expensive query's task subtree is stolen and spread while cheap
/// queries drain. Per-query timeout/limit come from `options.parallel`;
/// embedding counts are exact per query (each task is tagged with its query
/// context), so `queries[i].stats.embeddings` equals a standalone
/// MatchSequential run of queries[i].
///
/// `sinks`, when non-null, must have one entry per query (entries may be
/// null); Emit calls are serialised per sink. Queries that fail to plan
/// (e.g. empty) get their error in queries[i].status and do not affect the
/// others.
BatchResult RunBatch(const IndexedHypergraph& data,
                     const std::vector<Hypergraph>& queries,
                     const BatchOptions& options = {},
                     const std::vector<EmbeddingSink*>* sinks = nullptr);

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_BATCH_RUNNER_H_
