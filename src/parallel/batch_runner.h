#ifndef HGMATCH_PARALLEL_BATCH_RUNNER_H_
#define HGMATCH_PARALLEL_BATCH_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/hypergraph.h"
#include "core/indexed_hypergraph.h"
#include "core/result.h"
#include "parallel/executor.h"
#include "parallel/scheduler.h"
#include "util/status.h"

namespace hgmatch {

/// Options of the batch execution engine.
struct BatchOptions {
  /// Pool configuration plus the *per-query* timeout/limit. Per-query
  /// timeouts are measured from each query's *admission* time (when its
  /// SCAN ranges are seeded into the pool), so a query waiting behind the
  /// admission window does not burn its own budget while queued.
  ParallelOptions parallel;

  /// Whole-batch wall-clock timeout in seconds; <= 0 disables. When it
  /// fires, unfinished queries are stopped; a query is only reported
  /// timed_out if some of its work was actually dropped — a query whose
  /// final mid-flight task completes its counts keeps exact stats and is
  /// not marked timed out.
  double batch_timeout_seconds = 0;

  /// Admission window: at most this many queries are in flight at once;
  /// the rest wait in admission-policy order and are admitted as earlier
  /// queries finish. 0 = unlimited (the whole batch is admitted up front).
  /// A window of 1 serialises the queries while keeping intra-query
  /// parallelism; a small window bounds per-batch memory and gives later
  /// queries predictable admission latency under multi-user load.
  uint32_t max_inflight_queries = 0;

  /// Order in which waiting queries are admitted: FIFO in input order (the
  /// historical behaviour), strict priority, or weighted-fair across
  /// tenants (see AdmissionPolicy); priorities/tenants/weights come from
  /// the per-query SubmitOptions passed to RunBatch.
  AdmissionPolicy admission = AdmissionPolicy::kFifo;

  /// Per-query fairness quota: when a query already has this many live
  /// tasks, further expansions of it run inline depth-first instead of
  /// being queued, so one expensive query cannot flood the shared deques
  /// and starve cheap queries of the batch. 0 = off.
  uint64_t task_quota = 0;

  /// Detect repeated queries and reuse one compiled plan for all copies;
  /// copies without a sink additionally skip execution entirely and mirror
  /// the first copy's exact counts. Repeats are found via an
  /// isomorphism-invariant canonical key (small queries) falling back to an
  /// exact structural key, so renamed/reordered duplicates share too.
  bool plan_cache = true;

  /// When false the plan cache keys on byte-exact structure only — the
  /// pre-canonicalisation behaviour. An ablation/debug switch.
  bool plan_cache_isomorphism = true;
};

/// Outcome of one query of a batch. Entries of BatchResult::queries appear
/// in input order regardless of completion order (deterministic ordering).
struct BatchQueryResult {
  /// Planning outcome; when not ok the query was never executed, stats are
  /// all-zero and `outcome` is QueryStatus::kPlanError.
  Status status;

  /// Terminal state: ok / timeout / limit / cancelled / plan-error.
  QueryStatus outcome = QueryStatus::kOk;

  /// True when this query's counts were mirrored from a structurally
  /// identical earlier query (plan cache, sink-less repeat) instead of
  /// executing.
  bool mirrored = false;

  /// Per-query counters, exactly comparable to a standalone run of the same
  /// query. `seconds` is the time from this query's admission until its
  /// last task finished.
  MatchStats stats;

  /// Seconds from batch start until this query was admitted into the pool.
  /// Always the wall clock at admission, so approximately — not exactly —
  /// 0 when the admission window is unlimited; do not test it with == 0.
  double admit_seconds = 0;
};

/// Aggregate outcome of a batch run.
struct BatchResult {
  std::vector<BatchQueryResult> queries;  // input order
  MatchStats total;                       // summed over queries
  std::vector<WorkerReport> workers;      // size = pool threads
  uint64_t peak_task_bytes = 0;           // across all concurrent queries
  double seconds = 0;                     // batch wall time

  /// Queries fully completed (planned, not timed out, no limit hit) —
  /// including mirrored repeats, whose canonical copy completed.
  uint64_t completed = 0;

  /// Queries that actually executed on the pool.
  uint64_t executed = 0;

  /// Sink-less repeats that skipped execution and mirrored the canonical
  /// copy's counts. Mirrored queries are finished *results* but zero-cost
  /// *work* — keep the two apart when reporting throughput.
  uint64_t mirrored = 0;

  /// Queries whose compiled plan came from the plan cache (i.e. they were
  /// isomorphic to an earlier query of the batch), whether they then
  /// executed or mirrored.
  uint64_t plan_cache_hits = 0;

  /// The subset of plan_cache_hits that matched via the canonical
  /// (isomorphism-invariant) key rather than byte-for-byte structural
  /// equality — i.e. renamed/reordered duplicates.
  uint64_t plan_cache_isomorphic_hits = 0;

  /// Mirrors whose canonical copy resolved non-mirrorably (cancel/timeout)
  /// and that were re-submitted as independent executions.
  uint64_t redispatched = 0;

  /// Distinct plans actually compiled for this batch.
  uint64_t unique_plans = 0;

  /// Batch throughput in *executed* queries per second. Mirrored repeats
  /// are deliberately excluded: they complete at zero execution cost, so
  /// counting them would inflate the number (combine with `mirrored` when
  /// the serving rate including cache hits is wanted).
  double QueriesPerSecond() const {
    return seconds > 0 ? static_cast<double>(executed) / seconds : 0;
  }
};

/// Runs a set of queries against one indexed data hypergraph. This is a
/// thin compatibility facade over the streaming query service
/// (parallel/service.h MatchService): it submits every query (the service
/// plans them, deduplicating repeats through the plan cache), waits for all
/// of them, and maps the outcomes back to input order. The service in turn
/// drives the shared scheduler core (parallel/scheduler.h): all queries run
/// on a single shared work-stealing pool (Section VI.C), layering
/// inter-query parallelism on the intra-query task model, and per-query
/// counts stay exact (each task is tagged with its query context), so
/// `queries[i].stats.embeddings` equals a standalone MatchSequential run of
/// queries[i] — including under the admission window and task quota.
///
/// `sinks`, when non-null, must have one entry per query (entries may be
/// null); Emit calls are serialised per sink. `submit`, when non-null, must
/// have one entry per query and carries the per-query admission parameters
/// (tenant/priority/weight/timeout/limit — the loader's per-query headers
/// land here); its sink field is overridden by `sinks` when both are given.
/// Queries that fail to plan (e.g. empty) get their error in
/// queries[i].status and do not affect the others.
BatchResult RunBatch(const IndexedHypergraph& data,
                     const std::vector<Hypergraph>& queries,
                     const BatchOptions& options = {},
                     const std::vector<EmbeddingSink*>* sinks = nullptr,
                     const std::vector<SubmitOptions>* submit = nullptr);

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_BATCH_RUNNER_H_
