#ifndef HGMATCH_PARALLEL_WS_DEQUE_H_
#define HGMATCH_PARALLEL_WS_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

// ThreadSanitizer does not model std::atomic_thread_fence (gcc promotes the
// use to an error under -fsanitize=thread), so under TSan the deque compiles
// a fence-free variant that carries the ordering on the atomic accesses
// themselves. It is slightly stronger than the fenced release — every
// behaviour of the fence-free variant is a behaviour of the fenced one — so
// races TSan proves absent here are absent in the release build's algorithm.
#if defined(__SANITIZE_THREAD__)
#define HGMATCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HGMATCH_TSAN 1
#endif
#endif
#ifndef HGMATCH_TSAN
#define HGMATCH_TSAN 0
#endif

namespace hgmatch {

/// Chase–Lev lock-free work-stealing deque [17] (Chase & Lev, SPAA'05),
/// with the memory-order corrections of Lê et al. (PPoPP'13). The owner
/// thread pushes and pops at the *bottom* (LIFO — realising the
/// bounded-memory schedule of Section VI.B), while thief threads steal
/// single elements from the *top*, i.e. the oldest tasks, which correspond
/// to the largest unexplored subtrees. HGMatch's executor steals a batch of
/// up to half a victim's queue by repeated Steal calls (Section VI.C).
///
/// T must be trivially copyable (the executor stores Task pointers).
template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(int64_t initial_capacity = 64)
      : top_(0), bottom_(0), array_(new Array(initial_capacity)) {}

  ~WorkStealingDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Amortised O(1); grows the backing array on overflow.
  void Push(T item) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) {
      a = Grow(a, t, b);
    }
    a->Put(b, item);
#if HGMATCH_TSAN
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only. Pops the most recently pushed element (LIFO).
  bool Pop(T* out) {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
#if HGMATCH_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t <= b) {
      T item = a->Get(b);
      if (t == b) {
        // Last element: race against thieves via CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      *out = item;
      return true;
    }
    // Deque was empty.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Any thread. Steals the oldest element (FIFO end).
  bool Steal(T* out) {
#if HGMATCH_TSAN
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t < b) {
      Array* a = array_.load(std::memory_order_consume);
      T item = a->Get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return false;  // Lost the race; caller may retry.
      }
      *out = item;
      return true;
    }
    return false;
  }

  /// Approximate size; exact only when quiescent.
  int64_t SizeApprox() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

  bool EmptyApprox() const { return SizeApprox() <= 0; }

 private:
  struct Array {
    explicit Array(int64_t cap)
        : capacity(cap), data(new std::atomic<T>[cap]) {}
    const int64_t capacity;
    std::unique_ptr<std::atomic<T>[]> data;

    T Get(int64_t i) const {
      return data[i & (capacity - 1)].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, T item) {
      data[i & (capacity - 1)].store(item, std::memory_order_relaxed);
    }
  };

  Array* Grow(Array* old, int64_t t, int64_t b) {
    Array* bigger = new Array(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    array_.store(bigger, std::memory_order_release);
    // Old arrays are retired, not freed, until destruction: a concurrent
    // thief may still hold the old pointer.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<int64_t> top_;
  std::atomic<int64_t> bottom_;
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_WS_DEQUE_H_
