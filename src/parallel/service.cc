#include "parallel/service.h"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/matching_order.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNotScheduled = 0xffffffffu;

// Canonical cache key of a query hypergraph: the exact vertex structure
// (vertex labels, then each hyperedge's arity, vertex ids and edge label),
// so key equality is exactly structural identity — two queries with equal
// keys have identical vertex labels and identical hyperedges over identical
// vertex ids, and therefore compile to interchangeable plans.
std::string QueryCacheKey(const Hypergraph& q) {
  std::string key;
  key.reserve(16 + q.NumVertices() * sizeof(Label) +
              q.NumIncidences() * sizeof(VertexId) +
              q.NumEdges() * (sizeof(Label) + sizeof(uint64_t)));
  auto append = [&key](const void* data, size_t bytes) {
    key.append(static_cast<const char*>(data), bytes);
  };
  const uint64_t nv = q.NumVertices();
  append(&nv, sizeof(nv));
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    const Label l = q.label(v);
    append(&l, sizeof(l));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const VertexSet& vs = q.edge(e);
    const uint64_t arity = vs.size();
    append(&arity, sizeof(arity));
    append(vs.data(), vs.size() * sizeof(VertexId));
    const Label el = q.edge_label(e);
    append(&el, sizeof(el));
  }
  return key;
}

}  // namespace

namespace internal {

// Shared state behind one Ticket. Exactly one of three shapes:
//  * executed:  sched_index valid — the query ran (or runs) on the pool;
//  * mirror:    canonical set — a sink-less structural repeat that copies
//               the canonical execution's outcome instead of running;
//  * rejected:  plan_status not-ok — failed planning or submitted after
//               Shutdown; resolved immediately.
struct QueryRecord {
  ServiceImpl* service = nullptr;
  uint64_t id = 0;
  Status plan_status;
  uint32_t sched_index = kNotScheduled;
  std::shared_ptr<QueryRecord> canonical;
  Hypergraph owned_query;  // keeps the plan's query alive for owning submits

  std::atomic<bool> resolved{false};
  QueryOutcome outcome;  // valid once `resolved`
};

class ServiceImpl {
 public:
  ServiceImpl(const IndexedHypergraph& data, const ServiceOptions& options)
      : data_(data),
        options_(options),
        scheduler_(data, MakeSchedulerOptions(options)) {
    if (!options.defer_start) {
      scheduler_.Start();
      started_ = true;
    }
  }

  ~ServiceImpl() { Shutdown(); }

  Ticket Submit(Hypergraph query, const SubmitOptions& so) {
    auto rec = std::make_shared<QueryRecord>();
    rec->owned_query = std::move(query);
    return SubmitRecord(std::move(rec), nullptr, so);
  }

  Ticket SubmitBorrowed(const Hypergraph& query, const SubmitOptions& so) {
    return SubmitRecord(std::make_shared<QueryRecord>(), &query, so);
  }

  void Drain() {
    EnsureStarted();
    scheduler_.WaitIdle();
  }

  ServiceReport Shutdown() {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shut_down_.load(std::memory_order_acquire)) return report_;
    {
      // Reject submissions racing with the shutdown *before* sealing the
      // scheduler: a scheduler submission after Seal() would never be
      // admitted.
      std::lock_guard<std::mutex> lock(mutex_);
      sealed_ = true;
      if (!started_) {
        scheduler_.Start();
        started_ = true;
      }
    }
    scheduler_.Seal();
    SchedulerReport sr = scheduler_.Join();
    {
      // Resolve every outstanding ticket from the final outcomes so that
      // Wait/TryGet after Shutdown are pure reads (tickets then work even
      // while the service is being torn down). resolve_mutex_ fences the
      // loop against a concurrent Ticket::Wait resolving the same record.
      std::lock_guard<std::mutex> lock(mutex_);
      std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
      for (auto& rec : records_) {
        if (rec->resolved.load(std::memory_order_acquire)) continue;
        const QueryRecord* source =
            rec->canonical != nullptr ? rec->canonical.get() : rec.get();
        rec->outcome = sr.queries[source->sched_index];
        rec->outcome.mirrored = rec->canonical != nullptr;
        rec->resolved.store(true, std::memory_order_release);
      }
      report_.workers = std::move(sr.workers);
      report_.peak_task_bytes = sr.peak_task_bytes;
      report_.seconds = sr.seconds;
      report_.submitted = submitted_;
      report_.executed = executed_;
      report_.mirrored = mirrored_;
      report_.plan_errors = plan_errors_;
      report_.plan_cache_hits = plan_cache_hits_;
      report_.unique_plans = plans_.size();
    }
    shut_down_.store(true, std::memory_order_release);
    return report_;
  }

  uint32_t num_threads() const { return scheduler_.num_threads(); }

  // ------------------------------------------------- ticket entry points --

  const QueryOutcome& Wait(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return rec->outcome;
    const QueryRecord* source =
        rec->canonical != nullptr ? rec->canonical.get() : rec;
    const QueryOutcome& out = scheduler_.WaitQuery(source->sched_index);
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (!rec->resolved.load(std::memory_order_acquire)) {
      rec->outcome = out;
      rec->outcome.mirrored = rec->canonical != nullptr;
      rec->resolved.store(true, std::memory_order_release);
    }
    return rec->outcome;
  }

  const QueryOutcome* TryGet(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return &rec->outcome;
    const QueryRecord* source =
        rec->canonical != nullptr ? rec->canonical.get() : rec;
    if (scheduler_.TryGetQuery(source->sched_index) == nullptr) return nullptr;
    return &Wait(rec);  // finished: resolve without blocking
  }

  bool Cancel(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    if (rec->canonical == nullptr) {
      return scheduler_.Cancel(rec->sched_index);
    }
    // Mirror: if the canonical execution already finished, the mirror is
    // (about to be) resolved from it — too late to cancel; otherwise the
    // mirror detaches and resolves as cancelled, leaving the canonical
    // execution (and any sibling mirrors) untouched.
    if (scheduler_.TryGetQuery(rec->canonical->sched_index) != nullptr) {
      Wait(rec);
      return false;
    }
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    rec->outcome = QueryOutcome{};
    rec->outcome.status = QueryStatus::kCancelled;
    rec->outcome.mirrored = true;
    rec->resolved.store(true, std::memory_order_release);
    return true;
  }

 private:
  static SchedulerOptions MakeSchedulerOptions(const ServiceOptions& o) {
    SchedulerOptions so;
    so.parallel = o.parallel;
    so.admission = o.admission;
    so.max_inflight_queries = o.max_inflight_queries;
    so.task_quota = o.task_quota;
    so.batch_timeout_seconds = o.run_timeout_seconds;
    return so;
  }

  void EnsureStarted() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      scheduler_.Start();
      started_ = true;
    }
  }

  double EffectiveTimeout(const SubmitOptions& so) const {
    return so.timeout_seconds < 0 ? options_.parallel.timeout_seconds
                                  : so.timeout_seconds;
  }

  uint64_t EffectiveLimit(const SubmitOptions& so) const {
    return so.limit == SubmitOptions::kInheritLimit ? options_.parallel.limit
                                                    : so.limit;
  }

  // `borrowed` is null for owning submits (the query then lives in
  // rec->owned_query).
  Ticket SubmitRecord(std::shared_ptr<QueryRecord> rec,
                      const Hypergraph* borrowed, const SubmitOptions& so) {
    const Hypergraph& query =
        borrowed != nullptr ? *borrowed : rec->owned_query;
    rec->service = this;

    std::lock_guard<std::mutex> lock(mutex_);
    SweepResolvedRecordsLocked();
    rec->id = submitted_++;
    if (sealed_) {
      rec->plan_status = Status::InvalidArgument("service is shut down");
      rec->outcome.status = QueryStatus::kPlanError;
      rec->resolved.store(true, std::memory_order_release);
      ++plan_errors_;
      records_.push_back(rec);
      return Ticket(std::move(rec));
    }

    std::string key;
    if (options_.plan_cache) {
      key = QueryCacheKey(query);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++plan_cache_hits_;
        CacheEntry& entry = it->second;
        const bool same_budgets =
            EffectiveTimeout(so) == entry.timeout_seconds &&
            EffectiveLimit(so) == entry.limit;
        if (so.sink == nullptr && same_budgets) {
          const QueryOutcome* done =
              scheduler_.TryGetQuery(entry.canonical->sched_index);
          if (done == nullptr || done->status == QueryStatus::kOk ||
              done->status == QueryStatus::kLimit) {
            // Mirror: skip execution, copy the canonical outcome once it
            // is (or already became) available. A canonical that is known
            // to have timed out or been cancelled is not a trustworthy
            // source of counts, so such repeats re-execute below.
            rec->canonical = entry.canonical;
            ++mirrored_;
            records_.push_back(rec);
            return Ticket(std::move(rec));
          }
        }
        rec->sched_index = scheduler_.Submit(entry.plan, so);
        ++executed_;
        records_.push_back(rec);
        return Ticket(std::move(rec));
      }
    }

    Result<QueryPlan> plan = BuildQueryPlan(query, data_);
    if (!plan.ok()) {
      rec->plan_status = plan.status();
      rec->outcome.status = QueryStatus::kPlanError;
      rec->resolved.store(true, std::memory_order_release);
      ++plan_errors_;
      records_.push_back(rec);
      return Ticket(std::move(rec));
    }
    plans_.push_back(std::make_unique<QueryPlan>(std::move(plan.value())));
    const QueryPlan* compiled = plans_.back().get();
    rec->sched_index = scheduler_.Submit(compiled, so);
    ++executed_;
    if (options_.plan_cache) {
      cache_.emplace(std::move(key),
                     CacheEntry{compiled, rec, EffectiveTimeout(so),
                                EffectiveLimit(so)});
    }
    records_.push_back(rec);
    return Ticket(std::move(rec));
  }

  // Opportunistic GC for long-lived services: a resolved record is a pure
  // read through whatever tickets still hold it and is never needed by
  // Shutdown's resolve-all loop, so it can leave the registry (the
  // shared_ptr keeps live tickets valid, and cache canonicals stay
  // reachable through cache_ / their mirrors). Amortised O(1): sweep only
  // when the registry doubled since the last sweep. Callers hold mutex_.
  void SweepResolvedRecordsLocked() {
    if (records_.size() < 64 || records_.size() < 2 * last_sweep_size_) {
      return;
    }
    std::erase_if(records_, [](const std::shared_ptr<QueryRecord>& rec) {
      return rec->resolved.load(std::memory_order_acquire);
    });
    last_sweep_size_ = records_.size();
  }

  struct CacheEntry {
    const QueryPlan* plan = nullptr;
    std::shared_ptr<QueryRecord> canonical;  // first submission of this key
    double timeout_seconds = 0;  // the canonical's effective budgets: only
    uint64_t limit = 0;          // repeats under equal budgets may mirror
  };

  const IndexedHypergraph& data_;
  const ServiceOptions options_;
  Scheduler scheduler_;

  std::mutex mutex_;  // cache, records, counters
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<std::unique_ptr<QueryPlan>> plans_;
  std::vector<std::shared_ptr<QueryRecord>> records_;
  uint64_t submitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t mirrored_ = 0;
  uint64_t plan_errors_ = 0;
  uint64_t plan_cache_hits_ = 0;
  size_t last_sweep_size_ = 0;
  bool sealed_ = false;
  bool started_ = false;  // guarded by mutex_ after construction

  std::mutex resolve_mutex_;  // serialises Wait/Cancel resolution races

  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
  ServiceReport report_;
};

}  // namespace internal

// ------------------------------------------------------------------ Ticket --

uint64_t Ticket::id() const { return rec_->id; }

const Status& Ticket::status() const { return rec_->plan_status; }

const QueryOutcome& Ticket::Wait() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return rec_->outcome;
  return rec_->service->Wait(rec_.get());
}

const QueryOutcome* Ticket::TryGet() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return &rec_->outcome;
  return rec_->service->TryGet(rec_.get());
}

bool Ticket::Cancel() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return false;
  return rec_->service->Cancel(rec_.get());
}

// ------------------------------------------------------------ MatchService --

MatchService::MatchService(const IndexedHypergraph& data,
                           const ServiceOptions& options)
    : impl_(std::make_unique<internal::ServiceImpl>(data, options)) {}

MatchService::~MatchService() = default;

Ticket MatchService::Submit(Hypergraph query, const SubmitOptions& options) {
  return impl_->Submit(std::move(query), options);
}

Ticket MatchService::SubmitBorrowed(const Hypergraph& query,
                                    const SubmitOptions& options) {
  return impl_->SubmitBorrowed(query, options);
}

void MatchService::Drain() { impl_->Drain(); }

ServiceReport MatchService::Shutdown() { return impl_->Shutdown(); }

uint32_t MatchService::num_threads() const { return impl_->num_threads(); }

}  // namespace hgmatch
