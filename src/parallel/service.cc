#include "parallel/service.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/matching_order.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNotScheduled = 0xffffffffu;

// Canonical cache key of a query hypergraph: the exact vertex structure
// (vertex labels, then each hyperedge's arity, vertex ids and edge label),
// so key equality is exactly structural identity — two queries with equal
// keys have identical vertex labels and identical hyperedges over identical
// vertex ids, and therefore compile to interchangeable plans.
std::string QueryCacheKey(const Hypergraph& q) {
  std::string key;
  key.reserve(16 + q.NumVertices() * sizeof(Label) +
              q.NumIncidences() * sizeof(VertexId) +
              q.NumEdges() * (sizeof(Label) + sizeof(uint64_t)));
  auto append = [&key](const void* data, size_t bytes) {
    key.append(static_cast<const char*>(data), bytes);
  };
  const uint64_t nv = q.NumVertices();
  append(&nv, sizeof(nv));
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    const Label l = q.label(v);
    append(&l, sizeof(l));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const VertexSet& vs = q.edge(e);
    const uint64_t arity = vs.size();
    append(&arity, sizeof(arity));
    append(vs.data(), vs.size() * sizeof(VertexId));
    const Label el = q.edge_label(e);
    append(&el, sizeof(el));
  }
  return key;
}

}  // namespace

namespace internal {

// Shared state behind one Ticket. Exactly one of three shapes:
//  * executed:  sched_index valid — the query ran (or runs) on the pool;
//  * mirror:    canonical set — a sink-less structural repeat that copies
//               the canonical execution's outcome instead of running;
//  * failed:    plan_status not-ok — failed planning or submitted after
//               Shutdown; resolved immediately.
// Once resolved, the record is the slim, self-contained outcome store: the
// scheduler slot behind it is released (and, for plan-cache-off
// submissions, the compiled plan retired and freed), so a record costs the
// scheduler nothing after its outcome was first retrieved.
struct QueryRecord {
  ServiceImpl* service = nullptr;
  uint64_t id = 0;
  Status plan_status;
  uint32_t sched_index = kNotScheduled;
  std::shared_ptr<QueryRecord> canonical;
  Hypergraph owned_query;  // keeps the plan's query alive for owning submits
  // Plan-cache-off submissions own their plan; retired + freed at
  // resolution (cached plans instead live in ServiceImpl::plans_ for the
  // service lifetime, bounded by distinct query structures).
  std::unique_ptr<QueryPlan> owned_plan;
  // Cost tracker of this record's plan-cache entry: latest measured task
  // count of a completed run of the plan (0 = not yet measured). Written at
  // resolution, read at later submissions for cost-aware WFQ charging.
  std::shared_ptr<std::atomic<uint64_t>> plan_cost;

  // Threads currently blocked inside scheduler_.WaitQuery[For] on this
  // record's slot; the slot may only be released when none are (guarded by
  // resolve_mutex_, like `released`).
  int waiters = 0;
  bool released = false;

  std::atomic<bool> resolved{false};
  QueryOutcome outcome;  // valid once `resolved`
};

class ServiceImpl {
 public:
  ServiceImpl(const IndexedHypergraph& data, const ServiceOptions& options)
      : data_(data),
        options_(options),
        scheduler_(data, MakeSchedulerOptions(options)) {
    if (!options.defer_start) {
      scheduler_.Start();
      started_ = true;
    }
  }

  ~ServiceImpl() { Shutdown(); }

  Ticket Submit(Hypergraph query, const SubmitOptions& so) {
    auto rec = std::make_shared<QueryRecord>();
    rec->owned_query = std::move(query);
    return SubmitRecord(std::move(rec), nullptr, so);
  }

  Ticket SubmitBorrowed(const Hypergraph& query, const SubmitOptions& so) {
    return SubmitRecord(std::make_shared<QueryRecord>(), &query, so);
  }

  void Drain() {
    EnsureStarted();
    scheduler_.WaitIdle();
  }

  ServiceReport Shutdown() {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shut_down_.load(std::memory_order_acquire)) return report_;
    {
      // Reject submissions racing with the shutdown *before* sealing the
      // scheduler: a scheduler submission after Seal() would never be
      // admitted.
      std::lock_guard<std::mutex> lock(mutex_);
      sealed_ = true;
      if (!started_) {
        scheduler_.Start();
        started_ = true;
      }
    }
    scheduler_.Seal();
    scheduler_.WaitIdle();
    {
      // Resolve every outstanding ticket from the final outcomes so that
      // Wait/TryGet after Shutdown are pure reads (tickets then work even
      // while the service is being torn down), and so their slots are
      // released *before* Join assembles its report — a long-lived service
      // then shuts down without materialising an O(ever-submitted)
      // outcome vector. resolve_mutex_ fences the loop against a
      // concurrent Ticket::Wait resolving the same record.
      std::lock_guard<std::mutex> lock(mutex_);
      std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
      for (auto& rec : records_) ResolveFinishedLocked(rec.get());
    }
    SchedulerReport sr = scheduler_.Join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      report_.workers = std::move(sr.workers);
      report_.peak_task_bytes = sr.peak_task_bytes;
      report_.seconds = sr.seconds;
      report_.submitted = submitted_;
      report_.executed = executed_;
      report_.mirrored = mirrored_;
      report_.rejected = scheduler_.RejectedCount();
      report_.plan_errors = plan_errors_;
      report_.plan_cache_hits = plan_cache_hits_;
      report_.unique_plans = unique_plans_;
    }
    shut_down_.store(true, std::memory_order_release);
    return report_;
  }

  uint32_t num_threads() const { return scheduler_.num_threads(); }

  uint64_t finished_queries() const { return scheduler_.FinishedCount(); }

  // ------------------------------------------------- ticket entry points --

  const QueryOutcome& Wait(QueryRecord* rec) {
    if (rec->canonical != nullptr) {
      // Mirrors resolve from their canonical *record* (never from the
      // scheduler: the canonical's slot may already be released).
      const QueryOutcome& canonical_out = Wait(rec->canonical.get());
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, canonical_out);
      }
      return rec->outcome;
    }
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (rec->resolved.load(std::memory_order_acquire)) return rec->outcome;
      ++rec->waiters;  // blocks slot release while we wait on it
    }
    const QueryOutcome& out = scheduler_.WaitQuery(rec->sched_index);
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    --rec->waiters;
    if (!rec->resolved.load(std::memory_order_acquire)) {
      ResolveLocked(rec, out);
    } else {
      MaybeReleaseLocked(rec);  // we may have been the last waiter
    }
    return rec->outcome;
  }

  const QueryOutcome* WaitFor(QueryRecord* rec, double timeout_seconds) {
    if (rec->canonical != nullptr) {
      const QueryOutcome* canonical_out =
          WaitFor(rec->canonical.get(), timeout_seconds);
      if (canonical_out == nullptr) return nullptr;
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, *canonical_out);
      }
      return &rec->outcome;
    }
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (rec->resolved.load(std::memory_order_acquire)) return &rec->outcome;
      ++rec->waiters;
    }
    const QueryOutcome* out =
        scheduler_.WaitQueryFor(rec->sched_index, timeout_seconds);
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    --rec->waiters;
    if (out != nullptr && !rec->resolved.load(std::memory_order_acquire)) {
      ResolveLocked(rec, *out);
    } else {
      MaybeReleaseLocked(rec);
    }
    return rec->resolved.load(std::memory_order_acquire) ? &rec->outcome
                                                         : nullptr;
  }

  const QueryOutcome* TryGet(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return &rec->outcome;
    if (rec->canonical != nullptr) {
      const QueryOutcome* canonical_out = TryGet(rec->canonical.get());
      if (canonical_out == nullptr) return nullptr;
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, *canonical_out);
      }
      return &rec->outcome;
    }
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (rec->resolved.load(std::memory_order_acquire)) return &rec->outcome;
    // Safe against release: releases happen under resolve_mutex_, which we
    // hold, and this record's slot is unreleased (it is unresolved).
    const QueryOutcome* out = scheduler_.TryGetQuery(rec->sched_index);
    if (out == nullptr) return nullptr;
    ResolveLocked(rec, *out);
    return &rec->outcome;
  }

  bool Cancel(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    if (rec->canonical == nullptr) {
      // Resolution (and slot release) happens when the outcome is next
      // retrieved; a released slot reports false here (long finished).
      return scheduler_.Cancel(rec->sched_index);
    }
    // Mirror: if the canonical execution already finished, the mirror is
    // (about to be) resolved from it — too late to cancel; otherwise the
    // mirror detaches and resolves as cancelled, leaving the canonical
    // execution (and any sibling mirrors) untouched.
    const QueryOutcome* canonical_out = TryGet(rec->canonical.get());
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    if (canonical_out != nullptr) {
      ResolveLocked(rec, *canonical_out);
      return false;
    }
    rec->outcome = QueryOutcome{};
    rec->outcome.status = QueryStatus::kCancelled;
    rec->outcome.mirrored = true;
    rec->resolved.store(true, std::memory_order_release);
    return true;
  }

 private:
  static SchedulerOptions MakeSchedulerOptions(const ServiceOptions& o) {
    SchedulerOptions so;
    so.parallel = o.parallel;
    so.admission = o.admission;
    so.max_inflight_queries = o.max_inflight_queries;
    so.max_queued_queries = o.max_queued_queries;
    so.task_quota = o.task_quota;
    so.batch_timeout_seconds = o.run_timeout_seconds;
    return so;
  }

  // Stores `out` as the record's final outcome and releases whatever the
  // record still pins: its scheduler slot (once no Wait is blocked on it)
  // and, for plan-cache-off submissions, the compiled plan. Also feeds the
  // measured task count back into the plan-cache cost tracker (cost-aware
  // WFQ). Callers hold resolve_mutex_ and guarantee !rec->resolved.
  void ResolveLocked(QueryRecord* rec, const QueryOutcome& out) {
    rec->outcome = out;
    rec->outcome.mirrored = rec->canonical != nullptr;
    if (rec->plan_cost != nullptr && rec->canonical == nullptr &&
        out.status == QueryStatus::kOk) {
      // Only complete runs measure the plan's true cost; partial runs
      // (timeout/cancel/limit) undercount and would skew later charges.
      rec->plan_cost->store(std::max<uint64_t>(1, out.stats.expansions),
                            std::memory_order_relaxed);
    }
    rec->resolved.store(true, std::memory_order_release);
    MaybeReleaseLocked(rec);
  }

  // Releases the resolved record's scheduler slot unless a waiter is still
  // blocked inside scheduler_.WaitQuery[For] on it (the last such waiter
  // releases on its way out). Callers hold resolve_mutex_.
  void MaybeReleaseLocked(QueryRecord* rec) {
    if (rec->released || rec->waiters != 0 ||
        rec->sched_index == kNotScheduled ||
        !rec->resolved.load(std::memory_order_acquire)) {
      return;
    }
    rec->released = true;
    scheduler_.Release(rec->sched_index);
    if (rec->owned_plan != nullptr) {
      // Plan-cache off: this plan served exactly this (finished) query.
      // Retire the uid so workers drop their cached expanders, then free
      // the plan and its query.
      scheduler_.RetirePlan(rec->owned_plan->uid);
      rec->owned_plan.reset();
      rec->owned_query = Hypergraph();
    }
  }

  // Shutdown path: resolve a record from its finished scheduler slot (or
  // its canonical record, resolved first). Callers hold resolve_mutex_
  // after Seal()+WaitIdle(), so every query has finished and every
  // unresolved record's slot is still retained. Recursion depth is at most
  // one (a canonical is never itself a mirror).
  void ResolveFinishedLocked(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return;
    if (rec->canonical != nullptr) {
      ResolveFinishedLocked(rec->canonical.get());
      ResolveLocked(rec, rec->canonical->outcome);
      return;
    }
    const QueryOutcome* out = scheduler_.TryGetQuery(rec->sched_index);
    if (out != nullptr) ResolveLocked(rec, *out);
  }

  void EnsureStarted() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      scheduler_.Start();
      started_ = true;
    }
  }

  double EffectiveTimeout(const SubmitOptions& so) const {
    return so.timeout_seconds < 0 ? options_.parallel.timeout_seconds
                                  : so.timeout_seconds;
  }

  uint64_t EffectiveLimit(const SubmitOptions& so) const {
    return so.limit == SubmitOptions::kInheritLimit ? options_.parallel.limit
                                                    : so.limit;
  }

  struct CacheEntry {
    const QueryPlan* plan = nullptr;
    // Source of mirrored outcomes; replaced when the original ends
    // unusably and a later accepted run takes over.
    std::shared_ptr<QueryRecord> canonical;
    // The record whose owned_query the cached plan references. Never
    // replaced: it pins the query hypergraph for as long as the plan can
    // be submitted, even after `canonical` moves on.
    std::shared_ptr<QueryRecord> plan_owner;
    // Latest measured task count of a completed run of this plan (0 = not
    // yet measured); the cost-aware WFQ charge of later submissions.
    std::shared_ptr<std::atomic<uint64_t>> cost;
    double timeout_seconds = 0;  // the canonical's effective budgets: only
    uint64_t limit = 0;          // repeats under equal budgets may mirror
  };

  // `borrowed` is null for owning submits (the query then lives in
  // rec->owned_query).
  Ticket SubmitRecord(std::shared_ptr<QueryRecord> rec,
                      const Hypergraph* borrowed, const SubmitOptions& so) {
    const Hypergraph& query =
        borrowed != nullptr ? *borrowed : rec->owned_query;
    rec->service = this;

    std::lock_guard<std::mutex> lock(mutex_);
    SweepResolvedRecordsLocked();
    rec->id = submitted_++;
    if (sealed_) {
      rec->plan_status = Status::InvalidArgument("service is shut down");
      rec->outcome.status = QueryStatus::kPlanError;
      rec->resolved.store(true, std::memory_order_release);
      ++plan_errors_;
      records_.push_back(rec);
      return Ticket(std::move(rec));
    }

    std::string key;
    if (options_.plan_cache) {
      key = QueryCacheKey(query);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++plan_cache_hits_;
        CacheEntry& entry = it->second;
        const bool same_budgets =
            EffectiveTimeout(so) == entry.timeout_seconds &&
            EffectiveLimit(so) == entry.limit;
        // TryGet resolves (and recycles) the canonical opportunistically;
        // it never consults a released slot.
        const QueryOutcome* done = TryGet(entry.canonical.get());
        if (so.sink == nullptr && same_budgets) {
          if (done == nullptr || done->status == QueryStatus::kOk ||
              done->status == QueryStatus::kLimit) {
            // Mirror: skip execution, copy the canonical outcome once it
            // is (or already became) available. A canonical that is known
            // to have timed out or been cancelled is not a trustworthy
            // source of counts, so such repeats re-execute below.
            rec->canonical = entry.canonical;
            ++mirrored_;
            records_.push_back(rec);
            return Ticket(std::move(rec));
          }
        }
        rec->plan_cost = entry.cost;
        rec->sched_index =
            scheduler_.Submit(entry.plan, WithPlanCost(so, entry));
        if (CountScheduledLocked(rec.get()) && done != nullptr &&
            done->status != QueryStatus::kOk &&
            done->status != QueryStatus::kLimit && same_budgets) {
          // The cached canonical ended unusably (rejected/cancelled/
          // timeout) so repeats stopped mirroring; this accepted,
          // same-budget execution becomes the new canonical, restoring
          // mirroring for the structure once it completes.
          entry.canonical = rec;
        }
        records_.push_back(rec);
        return Ticket(std::move(rec));
      }
    }

    Result<QueryPlan> plan = BuildQueryPlan(query, data_);
    if (!plan.ok()) {
      rec->plan_status = plan.status();
      rec->outcome.status = QueryStatus::kPlanError;
      rec->resolved.store(true, std::memory_order_release);
      ++plan_errors_;
      records_.push_back(rec);
      return Ticket(std::move(rec));
    }
    auto compiled_owner =
        std::make_unique<QueryPlan>(std::move(plan).value());
    const QueryPlan* compiled = compiled_owner.get();
    ++unique_plans_;
    rec->sched_index = scheduler_.Submit(compiled, so);
    const bool accepted = CountScheduledLocked(rec.get());
    if (options_.plan_cache && accepted) {
      plans_.push_back(std::move(compiled_owner));
      auto cost = std::make_shared<std::atomic<uint64_t>>(0);
      rec->plan_cost = cost;
      cache_.emplace(std::move(key),
                     CacheEntry{compiled, rec, rec, std::move(cost),
                                EffectiveTimeout(so), EffectiveLimit(so)});
    } else {
      // Without the cache — or when this submission was shed by the queue
      // bound (a rejected canonical would poison the structure's cache
      // entry: repeats could never mirror again) — the plan serves exactly
      // this record; it is retired + freed at resolution (bounded
      // retention for cache-off services).
      rec->owned_plan = std::move(compiled_owner);
    }
    records_.push_back(rec);
    return Ticket(std::move(rec));
  }

  // A submission shed by the queue-depth bound resolves synchronously
  // inside scheduler_.Submit; classify it as rejected rather than executed
  // (report semantics: `executed` = queries that actually ran). Returns
  // whether the submission was accepted onto the pool.
  bool CountScheduledLocked(QueryRecord* rec) {
    const QueryOutcome* out = scheduler_.TryGetQuery(rec->sched_index);
    if (out != nullptr && out->status == QueryStatus::kRejected) return false;
    ++executed_;
    return true;
  }

  // Cost-aware WFQ: charge this admission by the plan's last measured task
  // count (first-seen plans keep the flat charge of 1).
  SubmitOptions WithPlanCost(const SubmitOptions& so, const CacheEntry& entry) {
    SubmitOptions effective = so;
    if (options_.cost_aware_wfq &&
        options_.admission == AdmissionPolicy::kWeightedFair) {
      const uint64_t measured = entry.cost->load(std::memory_order_relaxed);
      if (measured > 0) effective.cost = static_cast<double>(measured);
    }
    return effective;
  }

  // Opportunistic GC for long-lived services: a resolved record is a pure
  // read through whatever tickets still hold it and is never needed by
  // Shutdown's resolve-all loop, so it can leave the registry (the
  // shared_ptr keeps live tickets valid, and cache canonicals stay
  // reachable through cache_ / their mirrors). Amortised O(1): sweep only
  // when the registry doubled since the last sweep. Callers hold mutex_.
  void SweepResolvedRecordsLocked() {
    if (records_.size() < 64 || records_.size() < 2 * last_sweep_size_) {
      return;
    }
    std::erase_if(records_, [](const std::shared_ptr<QueryRecord>& rec) {
      return rec->resolved.load(std::memory_order_acquire);
    });
    last_sweep_size_ = records_.size();
  }

  const IndexedHypergraph& data_;
  const ServiceOptions options_;
  Scheduler scheduler_;

  std::mutex mutex_;  // cache, records, counters
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<std::unique_ptr<QueryPlan>> plans_;
  std::vector<std::shared_ptr<QueryRecord>> records_;
  uint64_t submitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t mirrored_ = 0;
  uint64_t plan_errors_ = 0;
  uint64_t plan_cache_hits_ = 0;
  uint64_t unique_plans_ = 0;  // plans compiled (cached or record-owned)
  size_t last_sweep_size_ = 0;
  bool sealed_ = false;
  bool started_ = false;  // guarded by mutex_ after construction

  std::mutex resolve_mutex_;  // serialises Wait/Cancel resolution races

  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
  ServiceReport report_;
};

}  // namespace internal

// ------------------------------------------------------------------ Ticket --

uint64_t Ticket::id() const { return rec_->id; }

const Status& Ticket::status() const { return rec_->plan_status; }

const QueryOutcome& Ticket::Wait() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return rec_->outcome;
  return rec_->service->Wait(rec_.get());
}

const QueryOutcome* Ticket::Wait(double timeout_seconds) const {
  if (rec_->resolved.load(std::memory_order_acquire)) return &rec_->outcome;
  return rec_->service->WaitFor(rec_.get(), timeout_seconds);
}

const QueryOutcome* Ticket::TryGet() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return &rec_->outcome;
  return rec_->service->TryGet(rec_.get());
}

bool Ticket::Cancel() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return false;
  return rec_->service->Cancel(rec_.get());
}

// ------------------------------------------------------------ MatchService --

MatchService::MatchService(const IndexedHypergraph& data,
                           const ServiceOptions& options)
    : impl_(std::make_unique<internal::ServiceImpl>(data, options)) {}

MatchService::~MatchService() = default;

Ticket MatchService::Submit(Hypergraph query, const SubmitOptions& options) {
  return impl_->Submit(std::move(query), options);
}

Ticket MatchService::SubmitBorrowed(const Hypergraph& query,
                                    const SubmitOptions& options) {
  return impl_->SubmitBorrowed(query, options);
}

void MatchService::Drain() { impl_->Drain(); }

ServiceReport MatchService::Shutdown() { return impl_->Shutdown(); }

uint32_t MatchService::num_threads() const { return impl_->num_threads(); }

uint64_t MatchService::finished_queries() const {
  return impl_->finished_queries();
}

}  // namespace hgmatch
