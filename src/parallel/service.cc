#include "parallel/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/matching_order.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNotScheduled = 0xffffffffu;

// Canonical cache key of a query hypergraph: the exact vertex structure
// (vertex labels, then each hyperedge's arity, vertex ids and edge label),
// so key equality is exactly structural identity — two queries with equal
// keys have identical vertex labels and identical hyperedges over identical
// vertex ids, and therefore compile to interchangeable plans.
std::string QueryCacheKey(const Hypergraph& q) {
  std::string key;
  key.reserve(16 + q.NumVertices() * sizeof(Label) +
              q.NumIncidences() * sizeof(VertexId) +
              q.NumEdges() * (sizeof(Label) + sizeof(uint64_t)));
  auto append = [&key](const void* data, size_t bytes) {
    key.append(static_cast<const char*>(data), bytes);
  };
  const uint64_t nv = q.NumVertices();
  append(&nv, sizeof(nv));
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    const Label l = q.label(v);
    append(&l, sizeof(l));
  }
  for (EdgeId e = 0; e < q.NumEdges(); ++e) {
    const VertexSet& vs = q.edge(e);
    const uint64_t arity = vs.size();
    append(&arity, sizeof(arity));
    append(vs.data(), vs.size() * sizeof(VertexId));
    const Label el = q.edge_label(e);
    append(&el, sizeof(el));
  }
  return key;
}

}  // namespace

namespace internal {

// Shared state behind one Ticket. Exactly one of three shapes:
//  * executed:  sched_index valid — the query ran (or runs) on the pool;
//  * mirror:    canonical set — a sink-less structural repeat that copies
//               the canonical execution's outcome instead of running;
//  * failed:    plan_status not-ok — failed planning or submitted after
//               Shutdown; resolved immediately.
// Resolution is eager and completion-driven: the scheduler's per-query
// completion hook resolves an executed record the moment its query
// finalises (mirrors resolve in the same step as their canonical), after
// which the record is the slim, self-contained outcome store — the
// scheduler slot behind it is released (and, for plan-cache-off
// submissions, the compiled plan retired and freed), so a record costs the
// scheduler nothing once its query finished, whether or not anyone ever
// retrieves the outcome.
struct QueryRecord {
  ServiceImpl* service = nullptr;
  uint64_t id = 0;
  Status plan_status;
  uint32_t sched_index = kNotScheduled;
  std::shared_ptr<QueryRecord> canonical;
  Hypergraph owned_query;  // keeps the plan's query alive for owning submits
  // Plan-cache-off submissions own their plan; retired + freed at
  // resolution (cached plans instead live in ServiceImpl::plans_ for the
  // service lifetime, bounded by distinct query structures).
  std::unique_ptr<QueryPlan> owned_plan;
  // Cost tracker of this record's plan-cache entry: latest measured task
  // count of a completed run of the plan (0 = not yet measured). Written at
  // resolution, read at later submissions for cost-aware WFQ charging.
  std::shared_ptr<std::atomic<uint64_t>> plan_cost;

  // Per-submit completion hook (SubmitOptions::completion); moved into the
  // fire list when the record resolves, which is what makes exactly-once
  // structural — a record resolves once, and the hook can only be taken
  // once. Guarded by resolve_mutex_.
  std::function<void(const QueryOutcome&)> completion;
  // Unresolved sink-less repeats attached to this (canonical) record; they
  // resolve in the same step as the canonical, so mirror tickets and their
  // completion hooks never wait on anything but the one real execution.
  // Guarded by resolve_mutex_.
  std::vector<std::shared_ptr<QueryRecord>> mirrors;

  bool released = false;  // scheduler slot handed back; resolve_mutex_

  std::atomic<bool> resolved{false};
  QueryOutcome outcome;  // valid once `resolved`
};

class ServiceImpl {
 public:
  ServiceImpl(const IndexedHypergraph& data, const ServiceOptions& options)
      : data_(data),
        options_(options),
        scheduler_(data, MakeSchedulerOptions(options)) {
    if (!options.defer_start) {
      scheduler_.Start();
      started_ = true;
    }
  }

  ~ServiceImpl() { Shutdown(); }

  Ticket Submit(Hypergraph query, const SubmitOptions& so) {
    auto rec = std::make_shared<QueryRecord>();
    rec->owned_query = std::move(query);
    return SubmitRecord(std::move(rec), nullptr, so);
  }

  Ticket SubmitBorrowed(const Hypergraph& query, const SubmitOptions& so) {
    return SubmitRecord(std::make_shared<QueryRecord>(), &query, so);
  }

  // One admission pass for the whole batch: everything SubmitRecord does
  // per query happens here once per *batch* (lock acquisition, record
  // sweep, wake + hook delivery), with the per-entry body unchanged —
  // ids, cache/mirror behaviour and hook ordering match N Submit() calls.
  std::vector<Ticket> SubmitBatch(std::vector<BatchSubmission> batch) {
    std::vector<std::shared_ptr<QueryRecord>> recs;
    recs.reserve(batch.size());
    for (BatchSubmission& b : batch) {
      auto rec = std::make_shared<QueryRecord>();
      rec->owned_query = std::move(b.query);
      rec->service = this;
      rec->completion = b.options.completion;
      recs.push_back(std::move(rec));
    }
    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SweepResolvedRecordsLocked();
      for (size_t i = 0; i < recs.size(); ++i) {
        const std::shared_ptr<QueryRecord>& rec = recs[i];
        rec->id = submitted_++;
        if (sealed_) {
          rec->plan_status = Status::InvalidArgument("service is shut down");
          ++plan_errors_;
          QueryOutcome out;
          out.status = QueryStatus::kPlanError;
          ResolveNow(rec, out, &fire);
          records_.push_back(rec);
        } else {
          SubmitOpenLocked(rec, rec->owned_query, batch[i].options, &fire);
        }
      }
    }
    if (!fire.empty()) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
    }
    std::vector<Ticket> tickets;
    tickets.reserve(recs.size());
    for (std::shared_ptr<QueryRecord>& rec : recs) {
      tickets.push_back(Ticket(std::move(rec)));
    }
    return tickets;
  }

  void Drain() {
    EnsureStarted();
    scheduler_.WaitIdle();
    // The pool going idle means every query finished, but the completion
    // hook of the very last one may still be mid-flight on a worker; a
    // drained service promises every ticket *resolved*, so wait out the
    // specific records still unresolved at this point (a global count
    // would not do: a submission racing in behind us and resolving
    // synchronously could stand in for the straggler we are waiting for).
    std::vector<std::shared_ptr<QueryRecord>> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& rec : records_) {
        if (!rec->resolved.load(std::memory_order_acquire)) {
          pending.push_back(rec);
        }
      }
    }
    std::unique_lock<std::mutex> lock(resolve_mutex_);
    for (const auto& rec : pending) {
      resolve_cv_.wait(lock, [&rec] {
        return rec->resolved.load(std::memory_order_acquire);
      });
    }
  }

  ServiceReport Shutdown() {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shut_down_.load(std::memory_order_acquire)) return report_;
    {
      // Reject submissions racing with the shutdown *before* sealing the
      // scheduler: a scheduler submission after Seal() would never be
      // admitted.
      std::lock_guard<std::mutex> lock(mutex_);
      sealed_ = true;
      if (!started_) {
        scheduler_.Start();
        started_ = true;
      }
    }
    scheduler_.Seal();
    scheduler_.WaitIdle();
    std::vector<FiredCompletion> fire;
    {
      // Every query has finished and almost every record already resolved
      // through its completion hook; sweep the stragglers whose hook is
      // still mid-flight on a worker, so Wait/TryGet after Shutdown are
      // pure reads and every slot is released *before* Join assembles its
      // report — a long-lived service then shuts down without
      // materialising an O(ever-submitted) outcome vector.
      std::lock_guard<std::mutex> lock(mutex_);
      std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
      for (auto& rec : records_) ResolveFinishedLocked(rec, &fire);
    }
    resolve_cv_.notify_all();
    FireCompletions(&fire);
    SchedulerReport sr = scheduler_.Join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      report_.workers = std::move(sr.workers);
      report_.peak_task_bytes = sr.peak_task_bytes;
      report_.seconds = sr.seconds;
      report_.submitted = submitted_;
      report_.executed = executed_;
      report_.mirrored = mirrored_;
      report_.rejected = scheduler_.RejectedCount();
      report_.plan_errors = plan_errors_;
      report_.plan_cache_hits = plan_cache_hits_;
      report_.unique_plans = unique_plans_;
    }
    shut_down_.store(true, std::memory_order_release);
    return report_;
  }

  uint32_t num_threads() const { return scheduler_.num_threads(); }

  uint64_t finished_queries() const {
    return finished_.load(std::memory_order_acquire);
  }

  ServiceGauges Gauges() {
    ServiceGauges g;
    g.finished = finished_.load(std::memory_order_acquire);
    g.live_contexts = scheduler_.LiveContexts();
    g.retained_slots = scheduler_.RetainedSlots();
    g.rejected = scheduler_.RejectedCount();
    return g;
  }

  // ------------------------------------------------- ticket entry points --

  const QueryOutcome& Wait(QueryRecord* rec) {
    std::unique_lock<std::mutex> lock(resolve_mutex_);
    resolve_cv_.wait(lock, [rec] {
      return rec->resolved.load(std::memory_order_acquire);
    });
    return rec->outcome;
  }

  const QueryOutcome* WaitFor(QueryRecord* rec, double timeout_seconds) {
    std::unique_lock<std::mutex> lock(resolve_mutex_);
    resolve_cv_.wait_for(
        lock,
        std::chrono::duration<double>(
            timeout_seconds > 0 ? timeout_seconds : 0),
        [rec] { return rec->resolved.load(std::memory_order_acquire); });
    return rec->resolved.load(std::memory_order_acquire) ? &rec->outcome
                                                         : nullptr;
  }

  const QueryOutcome* TryGet(QueryRecord* rec) {
    // Resolution is eager (completion hook), so the resolved flag is the
    // whole truth — no scheduler consultation, no lock.
    return rec->resolved.load(std::memory_order_acquire) ? &rec->outcome
                                                         : nullptr;
  }

  bool Cancel(const std::shared_ptr<QueryRecord>& rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    if (rec->canonical == nullptr) {
      // Resolution arrives through the scheduler's completion hook —
      // synchronously inside this call for queries cancelled while queued,
      // at the next task boundary for in-flight ones. A released slot
      // reports false here (long finished).
      return scheduler_.Cancel(rec->sched_index);
    }
    // Mirror: if the canonical execution already finished, the mirror is
    // (about to be) resolved from it — too late to cancel; otherwise the
    // mirror detaches and resolves as cancelled, leaving the canonical
    // execution (and any sibling mirrors) untouched.
    std::vector<FiredCompletion> fire;
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (rec->resolved.load(std::memory_order_acquire)) return false;
      QueryRecord* canon = rec->canonical.get();
      if (canon->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, canon->outcome, &fire);
      } else {
        QueryOutcome out;
        out.status = QueryStatus::kCancelled;
        ResolveLocked(rec, out, &fire);
        cancelled = true;
      }
    }
    resolve_cv_.notify_all();
    FireCompletions(&fire);
    return cancelled;
  }

 private:
  static SchedulerOptions MakeSchedulerOptions(const ServiceOptions& o) {
    SchedulerOptions so;
    so.parallel = o.parallel;
    so.admission = o.admission;
    so.max_inflight_queries = o.max_inflight_queries;
    so.max_queued_queries = o.max_queued_queries;
    so.task_quota = o.task_quota;
    so.batch_timeout_seconds = o.run_timeout_seconds;
    return so;
  }

  // One resolved record whose user-visible hooks are ready to fire once
  // every lock is released. The shared_ptr keeps the outcome alive
  // independent of the record registry.
  struct FiredCompletion {
    std::shared_ptr<QueryRecord> rec;
    std::function<void(const QueryOutcome&)> fn;
  };

  // Invokes the harvested hooks: the per-submit hook first, then the
  // service-wide one. Callers must hold no service or scheduler lock —
  // hooks may re-enter the read-side API (Ticket::TryGet).
  void FireCompletions(std::vector<FiredCompletion>* fire) {
    for (FiredCompletion& f : *fire) {
      if (f.fn) f.fn(f.rec->outcome);
      if (options_.on_query_complete) {
        options_.on_query_complete(f.rec->id, f.rec->outcome);
      }
    }
    fire->clear();
  }

  // The scheduler-level completion hook attached to every pool submission,
  // and the heart of completion-driven delivery: the moment the scheduler
  // finalises the query, the record resolves (slot released, mirrors
  // resolved along), every Ticket::Wait is woken, and the user hooks fire
  // — all on the thread that finalised the outcome.
  void OnSchedulerComplete(const std::shared_ptr<QueryRecord>& rec,
                           const QueryOutcome& out) {
    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, out, &fire);
      }
    }
    resolve_cv_.notify_all();
    FireCompletions(&fire);
  }

  // Stores `out` as the record's final outcome, releases whatever the
  // record still pins (its scheduler slot and, for plan-cache-off
  // submissions, the compiled plan), feeds the measured task count back
  // into the plan-cache cost tracker (cost-aware WFQ), resolves attached
  // mirrors from the same outcome, and harvests the completion hooks into
  // *fire for lock-free delivery by the caller. Callers hold
  // resolve_mutex_, guarantee !rec->resolved, and notify resolve_cv_ after
  // releasing the lock. Recursion depth is one: mirrors have no mirrors.
  void ResolveLocked(const std::shared_ptr<QueryRecord>& rec,
                     const QueryOutcome& out,
                     std::vector<FiredCompletion>* fire) {
    rec->outcome = out;
    rec->outcome.mirrored = rec->canonical != nullptr;
    if (rec->plan_cost != nullptr && rec->canonical == nullptr &&
        out.status == QueryStatus::kOk) {
      // Only complete runs measure the plan's true cost; partial runs
      // (timeout/cancel/limit) undercount and would skew later charges.
      rec->plan_cost->store(std::max<uint64_t>(1, out.stats.expansions),
                            std::memory_order_relaxed);
    }
    rec->resolved.store(true, std::memory_order_release);
    ReleaseSlotLocked(rec.get());
    fire->push_back({rec, std::move(rec->completion)});
    for (std::shared_ptr<QueryRecord>& m : rec->mirrors) {
      if (!m->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(m, rec->outcome, fire);
      }
    }
    rec->mirrors.clear();
    if (rec->sched_index != kNotScheduled) {
      // The finished-count gate of the wire server's poll fallback: bumped
      // strictly after this record's resolved flag AND after its mirrors
      // resolved (the fetch_add is visible to the lock-free sweep while
      // resolve_mutex_ is still held — a bump before the mirror loop would
      // let the sweep latch its gate past a mirror that resolves a few
      // instructions later and strand its outcome), so an observer of the
      // advanced count always finds every dependent outcome retrievable.
      finished_.fetch_add(1, std::memory_order_release);
    }
  }

  // Releases the resolved record's scheduler slot and, for plan-cache-off
  // submissions, retires + frees the plan that served exactly this query.
  // Callers hold resolve_mutex_.
  void ReleaseSlotLocked(QueryRecord* rec) {
    if (rec->released || rec->sched_index == kNotScheduled) return;
    rec->released = true;
    scheduler_.Release(rec->sched_index);
    if (rec->owned_plan != nullptr) {
      scheduler_.RetirePlan(rec->owned_plan->uid);
      rec->owned_plan.reset();
      rec->owned_query = Hypergraph();
    }
  }

  // Publishes the scheduler index of a just-submitted record, and finishes
  // any slot release the completion hook had to skip because it ran before
  // the index was known: a query can finalise on the pool (or synchronously
  // inside Submit, on the rejection path) before Submit's caller regains
  // control, and ResolveLocked then finds kNotScheduled. The catch-up also
  // performs the finished-count bump that gates the poll fallback.
  void AttachSchedIndex(const std::shared_ptr<QueryRecord>& rec,
                        uint32_t index) {
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    rec->sched_index = index;
    if (rec->resolved.load(std::memory_order_acquire) && !rec->released) {
      ReleaseSlotLocked(rec.get());
      finished_.fetch_add(1, std::memory_order_release);
    }
  }

  // Resolves a record outside the scheduler path (plan errors, sealed
  // submissions, mirrors of already-finished canonicals). Callers hold no
  // lock beyond mutex_ and fire + notify after releasing it.
  void ResolveNow(const std::shared_ptr<QueryRecord>& rec,
                  const QueryOutcome& out,
                  std::vector<FiredCompletion>* fire) {
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (!rec->resolved.load(std::memory_order_acquire)) {
      ResolveLocked(rec, out, fire);
    }
  }

  // Shutdown path: resolve a straggler record from its finished scheduler
  // slot (or its canonical record, resolved first — which resolves this
  // mirror along). Callers hold mutex_ + resolve_mutex_ after
  // Seal()+WaitIdle(), so every query has finished and every unresolved
  // record's slot is still retained.
  void ResolveFinishedLocked(const std::shared_ptr<QueryRecord>& rec,
                             std::vector<FiredCompletion>* fire) {
    if (rec->resolved.load(std::memory_order_acquire)) return;
    if (rec->canonical != nullptr) {
      ResolveFinishedLocked(rec->canonical, fire);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, rec->canonical->outcome, fire);
      }
      return;
    }
    const QueryOutcome* out = scheduler_.TryGetQuery(rec->sched_index);
    if (out != nullptr) ResolveLocked(rec, *out, fire);
  }

  void EnsureStarted() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      scheduler_.Start();
      started_ = true;
    }
  }

  double EffectiveTimeout(const SubmitOptions& so) const {
    return so.timeout_seconds < 0 ? options_.parallel.timeout_seconds
                                  : so.timeout_seconds;
  }

  uint64_t EffectiveLimit(const SubmitOptions& so) const {
    return so.limit == SubmitOptions::kInheritLimit ? options_.parallel.limit
                                                    : so.limit;
  }

  struct CacheEntry {
    const QueryPlan* plan = nullptr;
    // Source of mirrored outcomes; replaced when the original ends
    // unusably and a later accepted run takes over.
    std::shared_ptr<QueryRecord> canonical;
    // The record whose owned_query the cached plan references. Never
    // replaced: it pins the query hypergraph for as long as the plan can
    // be submitted, even after `canonical` moves on.
    std::shared_ptr<QueryRecord> plan_owner;
    // Latest measured task count of a completed run of this plan (0 = not
    // yet measured); the cost-aware WFQ charge of later submissions.
    std::shared_ptr<std::atomic<uint64_t>> cost;
    double timeout_seconds = 0;  // the canonical's effective budgets: only
    uint64_t limit = 0;          // repeats under equal budgets may mirror
  };

  // The scheduler-bound SubmitOptions of one pool submission: the user's
  // parameters, the cost-aware WFQ charge (charge this admission by the
  // plan's last measured task count; first-seen plans keep the flat 1),
  // and the service's internal completion hook in place of the user's —
  // the user hooks fire at service-level resolution, inside that hook.
  SubmitOptions SchedulerSubmit(const SubmitOptions& so,
                                const std::shared_ptr<QueryRecord>& rec,
                                const CacheEntry* entry) {
    SubmitOptions effective = so;
    if (entry != nullptr && options_.cost_aware_wfq &&
        options_.admission == AdmissionPolicy::kWeightedFair) {
      const uint64_t measured = entry->cost->load(std::memory_order_relaxed);
      if (measured > 0) effective.cost = static_cast<double>(measured);
    }
    effective.completion = [this, rec](const QueryOutcome& out) {
      OnSchedulerComplete(rec, out);
    };
    return effective;
  }

  // `borrowed` is null for owning submits (the query then lives in
  // rec->owned_query).
  Ticket SubmitRecord(std::shared_ptr<QueryRecord> rec,
                      const Hypergraph* borrowed, const SubmitOptions& so) {
    const Hypergraph& query =
        borrowed != nullptr ? *borrowed : rec->owned_query;
    rec->service = this;
    rec->completion = so.completion;

    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SweepResolvedRecordsLocked();
      rec->id = submitted_++;
      if (sealed_) {
        rec->plan_status = Status::InvalidArgument("service is shut down");
        ++plan_errors_;
        QueryOutcome out;
        out.status = QueryStatus::kPlanError;
        ResolveNow(rec, out, &fire);
        records_.push_back(rec);
      } else {
        SubmitOpenLocked(rec, query, so, &fire);
      }
    }
    // Synchronously resolved submissions (rejections, plan errors, mirrors
    // of finished canonicals) deliver their hooks before Submit returns;
    // hooks of executed queries fire from the pool when they finish.
    if (!fire.empty()) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
    }
    return Ticket(std::move(rec));
  }

  // The not-sealed body of SubmitRecord. Callers hold mutex_.
  void SubmitOpenLocked(const std::shared_ptr<QueryRecord>& rec,
                        const Hypergraph& query, const SubmitOptions& so,
                        std::vector<FiredCompletion>* fire) {
    std::string key;
    if (options_.plan_cache) {
      key = QueryCacheKey(query);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++plan_cache_hits_;
        CacheEntry& entry = it->second;
        const bool same_budgets =
            EffectiveTimeout(so) == entry.timeout_seconds &&
            EffectiveLimit(so) == entry.limit;
        // The canonical resolves eagerly (completion-driven), so its
        // resolved flag + stored outcome are the authoritative snapshot —
        // no scheduler consultation.
        const QueryOutcome* done =
            entry.canonical->resolved.load(std::memory_order_acquire)
                ? &entry.canonical->outcome
                : nullptr;
        if (so.sink == nullptr && same_budgets &&
            (done == nullptr || done->status == QueryStatus::kOk ||
             done->status == QueryStatus::kLimit)) {
          // Mirror: skip execution, copy the canonical outcome once it is
          // (or already became) available. A canonical that is known to
          // have timed out or been cancelled is not a trustworthy source
          // of counts, so such repeats re-execute below.
          rec->canonical = entry.canonical;
          ++mirrored_;
          records_.push_back(rec);
          std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
          if (entry.canonical->resolved.load(std::memory_order_acquire)) {
            // Resolved (well, or resolved *badly* in the window since the
            // snapshot above — the same fate the mirror would have shared
            // attached a moment earlier).
            if (!rec->resolved.load(std::memory_order_acquire)) {
              ResolveLocked(rec, entry.canonical->outcome, fire);
            }
          } else {
            entry.canonical->mirrors.push_back(rec);
          }
          return;
        }
        rec->plan_cost = entry.cost;
        const uint32_t index =
            scheduler_.Submit(entry.plan, SchedulerSubmit(so, rec, &entry));
        AttachSchedIndex(rec, index);
        if (CountScheduledLocked(rec.get()) && done != nullptr &&
            done->status != QueryStatus::kOk &&
            done->status != QueryStatus::kLimit && same_budgets) {
          // The cached canonical ended unusably (rejected/cancelled/
          // timeout) so repeats stopped mirroring; this accepted,
          // same-budget execution becomes the new canonical, restoring
          // mirroring for the structure once it completes.
          entry.canonical = rec;
        }
        records_.push_back(rec);
        return;
      }
    }

    Result<QueryPlan> plan = BuildQueryPlan(query, data_);
    if (!plan.ok()) {
      rec->plan_status = plan.status();
      ++plan_errors_;
      QueryOutcome out;
      out.status = QueryStatus::kPlanError;
      ResolveNow(rec, out, fire);
      records_.push_back(rec);
      return;
    }
    auto compiled_owner = std::make_unique<QueryPlan>(std::move(plan).value());
    const QueryPlan* compiled = compiled_owner.get();
    ++unique_plans_;
    // Everything the completion hook's resolution path reads must be in
    // place before Submit hands the record to the pool — a fast query can
    // finalise before this thread regains control.
    auto cost = options_.plan_cache
                    ? std::make_shared<std::atomic<uint64_t>>(0)
                    : nullptr;
    rec->plan_cost = cost;
    AttachSchedIndex(
        rec, scheduler_.Submit(compiled, SchedulerSubmit(so, rec, nullptr)));
    const bool accepted = CountScheduledLocked(rec.get());
    if (options_.plan_cache && accepted) {
      plans_.push_back(std::move(compiled_owner));
      cache_.emplace(std::move(key),
                     CacheEntry{compiled, rec, rec, std::move(cost),
                                EffectiveTimeout(so), EffectiveLimit(so)});
    } else {
      // Without the cache — or when this submission was shed by the queue
      // bound (a rejected canonical would poison the structure's cache
      // entry: repeats could never mirror again) — the plan serves exactly
      // this record; it is retired + freed at resolution (bounded
      // retention for cache-off services).
      {
        std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
        if (!rec->resolved.load(std::memory_order_acquire)) {
          rec->owned_plan = std::move(compiled_owner);
        } else {
          // Resolved synchronously inside Submit (shed by the queue
          // bound): the slot was already released, so retire the plan
          // right here instead of parking it on the record.
          scheduler_.RetirePlan(compiled_owner->uid);
          compiled_owner.reset();
        }
      }
    }
    records_.push_back(rec);
  }

  // A submission shed by the queue-depth bound resolves synchronously
  // inside scheduler_.Submit (through the completion hook); classify it as
  // rejected rather than executed (report semantics: `executed` = queries
  // that actually ran). Returns whether the submission was accepted onto
  // the pool. Callers hold mutex_.
  bool CountScheduledLocked(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire) &&
        rec->outcome.status == QueryStatus::kRejected) {
      return false;
    }
    ++executed_;
    return true;
  }

  // Opportunistic GC for long-lived services: a resolved record is a pure
  // read through whatever tickets still hold it and is never needed by
  // Shutdown's resolve-all loop, so it can leave the registry (the
  // shared_ptr keeps live tickets valid, and cache canonicals stay
  // reachable through cache_ / their mirrors). Amortised O(1): sweep only
  // when the registry doubled since the last sweep. Callers hold mutex_.
  void SweepResolvedRecordsLocked() {
    if (records_.size() < 64 || records_.size() < 2 * last_sweep_size_) {
      return;
    }
    std::erase_if(records_, [](const std::shared_ptr<QueryRecord>& rec) {
      return rec->resolved.load(std::memory_order_acquire);
    });
    last_sweep_size_ = records_.size();
  }

  const IndexedHypergraph& data_;
  const ServiceOptions options_;
  Scheduler scheduler_;

  std::mutex mutex_;  // cache, records, counters
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<std::unique_ptr<QueryPlan>> plans_;
  std::vector<std::shared_ptr<QueryRecord>> records_;
  uint64_t submitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t mirrored_ = 0;
  uint64_t plan_errors_ = 0;
  uint64_t plan_cache_hits_ = 0;
  uint64_t unique_plans_ = 0;  // plans compiled (cached or record-owned)
  size_t last_sweep_size_ = 0;
  bool sealed_ = false;
  bool started_ = false;  // guarded by mutex_ after construction

  // Lock order: mutex_ before resolve_mutex_; scheduler-internal locks are
  // only ever taken *under* resolve_mutex_ (Release/RetirePlan/TryGet),
  // never the other way around — the scheduler fires completion hooks with
  // no lock held.
  std::mutex resolve_mutex_;          // record resolution + mirror lists
  std::condition_variable resolve_cv_;  // armed by the completion hook
  std::atomic<uint64_t> finished_{0};  // pool submissions resolved

  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
  ServiceReport report_;
};

}  // namespace internal

// ------------------------------------------------------------------ Ticket --

uint64_t Ticket::id() const { return rec_->id; }

const Status& Ticket::status() const { return rec_->plan_status; }

const QueryOutcome& Ticket::Wait() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return rec_->outcome;
  return rec_->service->Wait(rec_.get());
}

const QueryOutcome* Ticket::Wait(double timeout_seconds) const {
  if (rec_->resolved.load(std::memory_order_acquire)) return &rec_->outcome;
  return rec_->service->WaitFor(rec_.get(), timeout_seconds);
}

const QueryOutcome* Ticket::TryGet() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return &rec_->outcome;
  return rec_->service->TryGet(rec_.get());
}

bool Ticket::Cancel() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return false;
  return rec_->service->Cancel(rec_);
}

// ------------------------------------------------------------ MatchService --

MatchService::MatchService(const IndexedHypergraph& data,
                           const ServiceOptions& options)
    : impl_(std::make_unique<internal::ServiceImpl>(data, options)) {}

MatchService::~MatchService() = default;

Ticket MatchService::Submit(Hypergraph query, const SubmitOptions& options) {
  return impl_->Submit(std::move(query), options);
}

Ticket MatchService::SubmitBorrowed(const Hypergraph& query,
                                    const SubmitOptions& options) {
  return impl_->SubmitBorrowed(query, options);
}

std::vector<Ticket> MatchService::SubmitBatch(
    std::vector<BatchSubmission> batch) {
  return impl_->SubmitBatch(std::move(batch));
}

void MatchService::Drain() { impl_->Drain(); }

ServiceReport MatchService::Shutdown() { return impl_->Shutdown(); }

uint32_t MatchService::num_threads() const { return impl_->num_threads(); }

uint64_t MatchService::finished_queries() const {
  return impl_->finished_queries();
}

ServiceGauges MatchService::Gauges() { return impl_->Gauges(); }

}  // namespace hgmatch
