#include "parallel/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/canonical.h"
#include "core/matching_order.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace hgmatch {

namespace {

constexpr uint32_t kNotScheduled = 0xffffffffu;

// Service-layer registry handles, resolved once per process (every
// MatchService instance shares them — the metrics describe the process,
// not one service).
struct ServiceMetrics {
  Counter* plan_cache_hits_exact;
  Counter* plan_cache_hits_isomorphic;
  Counter* plan_cache_misses;
  Counter* plan_cache_evictions;
  Counter* mirrored;
  Counter* redispatched;
};

const ServiceMetrics& Metrics() {
  static const ServiceMetrics m = [] {
    MetricsRegistry& reg = MetricsRegistry::Default();
    return ServiceMetrics{
        reg.GetCounter("hgmatch_plan_cache_hits_total", "kind=\"exact\""),
        reg.GetCounter("hgmatch_plan_cache_hits_total", "kind=\"isomorphic\""),
        reg.GetCounter("hgmatch_plan_cache_misses_total"),
        reg.GetCounter("hgmatch_plan_cache_evictions_total"),
        reg.GetCounter("hgmatch_queries_mirrored_total"),
        reg.GetCounter("hgmatch_queries_redispatched_total"),
    };
  }();
  return m;
}

// Serialises Emit across the sub-queries of one sharded fan: the
// scheduler serialises Emit per query, and each fan sub-query is its own
// scheduler query, so concurrent slices would otherwise race on the
// user's sink.
class LockedSink : public EmbeddingSink {
 public:
  explicit LockedSink(EmbeddingSink* wrapped) : wrapped_(wrapped) {}

  void Emit(const EdgeId* edges, uint32_t size) override {
    std::lock_guard<std::mutex> lock(mutex_);
    wrapped_->Emit(edges, size);
  }

 private:
  EmbeddingSink* wrapped_;
  std::mutex mutex_;
};

// Merge dominance of terminal statuses: when the slices of one sharded
// query end differently, the parent reports the most user-actionable
// cause (the same order QueryStatus documents).
int StatusSeverity(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return 0;
    case QueryStatus::kLimit: return 1;
    case QueryStatus::kTimeout: return 2;
    case QueryStatus::kCancelled: return 3;
    case QueryStatus::kPlanError: return 5;
    case QueryStatus::kRejected: return 4;
  }
  return 0;
}

// Folds one slice outcome into the fan's merged parent outcome: counts
// sum (the slices partition the embedding set), wall-clock fields span
// the whole fan (earliest admission to last finish), and the most severe
// status wins. `any` is false for the first slice.
void MergeShardOutcome(QueryOutcome* into, const QueryOutcome& out,
                       bool any) {
  if (!any) {
    *into = out;
    return;
  }
  if (StatusSeverity(out.status) > StatusSeverity(into->status)) {
    into->status = out.status;
  }
  into->stats += out.stats;
  into->stats.seconds = std::max(into->stats.seconds, out.stats.seconds);
  into->admit_seconds = std::min(into->admit_seconds, out.admit_seconds);
  into->finish_seconds = std::max(into->finish_seconds, out.finish_seconds);
  into->admit_index = std::min(into->admit_index, out.admit_index);
  // Span scalars span the whole fan (earliest submit/admit/first task,
  // latest last task); per-slice rows are appended by the caller, which
  // knows the slice index.
  into->span.MergeFrom(out.span);
}

// Whether a canonical outcome is a trustworthy source of mirrored counts:
// a complete run (kOk) or a limit stop at the same limit budget. Anything
// else (timeout, cancelled) carries partial counts that belong only to the
// execution that was interrupted — mirrors of such a canonical re-dispatch
// instead of copying them.
bool Mirrorable(QueryStatus s) {
  return s == QueryStatus::kOk || s == QueryStatus::kLimit;
}

}  // namespace

namespace internal {

// Fan-out bookkeeping of one sharded submission (ServiceOptions::shards
// > 1): the record's execution is K scheduler sub-queries, one per scan
// slice, and the parent resolves when the last of them does. Every field
// is guarded by ServiceImpl::resolve_mutex_ (sub-query completion hooks,
// attachment of scheduler indices and parent resolution all serialise
// there), except `locked_sink`, which is written once before the first
// sub-query is submitted.
struct ShardFan {
  uint32_t remaining = 0;      // sub-queries not yet finished
  bool any = false;            // `merged` holds at least one slice
  bool cancel_issued = false;  // a rejected slice cancelled its siblings
  QueryOutcome merged;         // running merge of finished slices
  // Scheduler indices of the sub-queries; kNotScheduled until Submit
  // returns each (a slice resolving synchronously inside Submit can beat
  // its own attachment).
  std::vector<uint32_t> sub;
  // Serialising wrapper around the user's sink, when one is set.
  std::unique_ptr<LockedSink> locked_sink;
};

// The mutex + condition variable every ticket wait and record resolution
// parks on. Shared-owned: the service holds one reference and every
// QueryRecord pins another, so a Ticket::Wait that is still inside the
// condition wait when its service is destroyed (a catalog unload drains on
// the completion hook, which fires before woken waiters have re-acquired
// the mutex) parks on storage that outlives the service.
struct ResolveGate {
  std::mutex m;
  std::condition_variable cv;
};

// Shared state behind one Ticket. Exactly one of three shapes:
//  * executed:  sched_index valid — the query ran (or runs) on the pool;
//  * mirror:    canonical set — a sink-less structural repeat that copies
//               the canonical execution's outcome instead of running. A
//               mirror whose canonical ends with a non-mirrorable outcome
//               (cancelled / timed out) is *re-dispatched*: it detaches,
//               clears `canonical` and becomes an executed record on the
//               shared compiled plan, with its own budgets and hooks;
//  * failed:    plan_status not-ok — failed planning or submitted after
//               Shutdown; resolved immediately.
// Resolution is eager and completion-driven: the scheduler's per-query
// completion hook resolves an executed record the moment its query
// finalises (mirrors resolve in the same step as their canonical), after
// which the record is the slim, self-contained outcome store — the
// scheduler slot behind it is released (and, for plan-cache-off
// submissions, the compiled plan retired and freed), so a record costs the
// scheduler nothing once its query finished, whether or not anyone ever
// retrieves the outcome.
struct QueryRecord {
  ServiceImpl* service = nullptr;
  // Pin on the service's resolve gate; lets Ticket reads outlive the
  // service (see ResolveGate).
  std::shared_ptr<ResolveGate> gate;
  uint64_t id = 0;
  Status plan_status;
  uint32_t sched_index = kNotScheduled;
  std::shared_ptr<QueryRecord> canonical;
  Hypergraph owned_query;  // keeps the plan's query alive for owning submits
  // Plan-cache-off submissions own their plan; retired + freed at
  // resolution (cached plans instead live in ServiceImpl::plans_ for the
  // service lifetime, bounded by distinct query structures).
  std::unique_ptr<QueryPlan> owned_plan;
  // Cost tracker of this record's plan-cache entry: latest measured task
  // count of a completed run of the plan (0 = not yet measured). Written at
  // resolution, read at later submissions for cost-aware WFQ charging.
  std::shared_ptr<std::atomic<uint64_t>> plan_cost;
  // In-flight-submission refcount of this record's plan-cache entry (the
  // LRU eviction guard); decremented exactly once, at resolution. Null
  // for cache-off submissions.
  std::shared_ptr<std::atomic<uint32_t>> plan_live;
  // Sharded execution state; null for plain (shards <= 1) submissions.
  std::shared_ptr<ShardFan> fan;

  // Mirror re-dispatch state, set at attachment (under mutex_ +
  // resolve_mutex_) and consumed by RedispatchMirrors when the canonical
  // ends with a non-mirrorable outcome: the user's own SubmitOptions
  // (budgets, tenant, priority, trace — the sink is null by the mirror
  // precondition, the completion hook lives in `completion` above), the
  // shared compiled plan (kept alive by the plan_live pin until this
  // record resolves), and the plan-cache key so the first accepted
  // re-dispatch can take over as the structure's canonical.
  SubmitOptions mirror_options;
  const QueryPlan* mirror_plan = nullptr;
  std::string cache_key;
  // True from the moment ResolveLocked hands this mirror to the
  // re-dispatch list until its pool submission attaches: a Cancel() in
  // that window has no scheduler index to target, so it latches
  // cancel_pending and the attachment cancels on the way out. Both
  // guarded by resolve_mutex_.
  bool redispatching = false;
  bool cancel_pending = false;

  // Per-submit completion hook (SubmitOptions::completion); moved into the
  // fire list when the record resolves, which is what makes exactly-once
  // structural — a record resolves once, and the hook can only be taken
  // once. Guarded by resolve_mutex_.
  std::function<void(const QueryOutcome&)> completion;
  // Unresolved sink-less repeats attached to this (canonical) record; they
  // resolve in the same step as the canonical, so mirror tickets and their
  // completion hooks never wait on anything but the one real execution.
  // Guarded by resolve_mutex_.
  std::vector<std::shared_ptr<QueryRecord>> mirrors;

  bool released = false;  // scheduler slot handed back; resolve_mutex_

  std::atomic<bool> resolved{false};
  QueryOutcome outcome;  // valid once `resolved`
};

class ServiceImpl {
 public:
  ServiceImpl(const IndexedHypergraph& data, const ServiceOptions& options)
      : data_(data),
        options_(options),
        owned_(std::make_unique<Scheduler>(data, ToSchedulerOptions(options))),
        sched_(owned_.get()) {
    if (!options.defer_start) {
      sched_->Start();
      started_ = true;
    }
  }

  // Shared-pool mode: execute on `pool`'s (already running) workers,
  // carrying data_ per submission. The pool outlives this service.
  ServiceImpl(const IndexedHypergraph& data, SchedulerPool& pool,
              const ServiceOptions& options)
      : data_(data), options_(options), sched_(&pool.scheduler()) {
    started_ = true;
  }

  ~ServiceImpl() { Shutdown(); }

  Ticket Submit(Hypergraph query, const SubmitOptions& so) {
    auto rec = std::make_shared<QueryRecord>();
    rec->owned_query = std::move(query);
    return SubmitRecord(std::move(rec), nullptr, so);
  }

  Ticket SubmitBorrowed(const Hypergraph& query, const SubmitOptions& so) {
    return SubmitRecord(std::make_shared<QueryRecord>(), &query, so);
  }

  // One admission pass for the whole batch: everything SubmitRecord does
  // per query happens here once per *batch* (lock acquisition, record
  // sweep, wake + hook delivery), with the per-entry body unchanged —
  // ids, cache/mirror behaviour and hook ordering match N Submit() calls.
  std::vector<Ticket> SubmitBatch(std::vector<BatchSubmission> batch) {
    std::vector<std::shared_ptr<QueryRecord>> recs;
    recs.reserve(batch.size());
    for (BatchSubmission& b : batch) {
      auto rec = std::make_shared<QueryRecord>();
      rec->owned_query = std::move(b.query);
      rec->service = this;
      rec->gate = gate_;
      rec->completion = b.options.completion;
      recs.push_back(std::move(rec));
    }
    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SweepResolvedRecordsLocked();
      for (size_t i = 0; i < recs.size(); ++i) {
        const std::shared_ptr<QueryRecord>& rec = recs[i];
        rec->id = submitted_++;
        if (sealed_) {
          rec->plan_status = Status::InvalidArgument("service is shut down");
          ++plan_errors_;
          QueryOutcome out;
          out.status = QueryStatus::kPlanError;
          ResolveNow(rec, out, &fire);
          records_.push_back(rec);
        } else {
          SubmitOpenLocked(rec, rec->owned_query, batch[i].options, &fire);
        }
      }
    }
    if (!fire.empty()) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
    }
    std::vector<Ticket> tickets;
    tickets.reserve(recs.size());
    for (std::shared_ptr<QueryRecord>& rec : recs) {
      tickets.push_back(Ticket(std::move(rec)));
    }
    return tickets;
  }

  void Drain() {
    EnsureStarted();
    // On an owned pool, idling first is a cheap fast-forward; on a shared
    // pool it would wait on sibling services' queries too, and the
    // record wait below is sufficient on its own (every record resolves
    // through a completion hook).
    if (owned_ != nullptr) sched_->WaitIdle();
    WaitRecordsResolved();
  }

  // Blocks until every record submitted so far has resolved. The
  // completion hook of the very last query may still be mid-flight on a
  // worker when the pool goes idle; a drained service promises every
  // ticket *resolved*, so wait out the specific records still unresolved
  // at this point (a global count would not do: a submission racing in
  // behind us and resolving synchronously could stand in for the
  // straggler we are waiting for).
  void WaitRecordsResolved() {
    std::vector<std::shared_ptr<QueryRecord>> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& rec : records_) {
        if (!rec->resolved.load(std::memory_order_acquire)) {
          pending.push_back(rec);
        }
      }
    }
    std::unique_lock<std::mutex> lock(resolve_mutex_);
    for (const auto& rec : pending) {
      resolve_cv_.wait(lock, [&rec] {
        return rec->resolved.load(std::memory_order_acquire);
      });
    }
  }

  ServiceReport Shutdown() {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shut_down_.load(std::memory_order_acquire)) return report_;
    {
      // Reject submissions racing with the shutdown *before* sealing the
      // scheduler: a scheduler submission after Seal() would never be
      // admitted.
      std::lock_guard<std::mutex> lock(mutex_);
      sealed_ = true;
      if (!started_) {
        sched_->Start();
        started_ = true;
      }
    }
    if (owned_ == nullptr) {
      // Shared pool: the pool keeps running for sibling services, so no
      // Seal/Join — wait for this service's own records instead (every
      // one resolves through a completion hook, sharded fans included),
      // then for in-flight hook deliveries to leave the building (Join
      // provides that barrier in owned mode; here nothing else would).
      WaitRecordsResolved();
      {
        std::unique_lock<std::mutex> lock(resolve_mutex_);
        resolve_cv_.wait(lock, [this] { return hook_busy_ == 0; });
      }
      std::lock_guard<std::mutex> lock(mutex_);
      // Cached plans die with this service while the pool's workers live
      // on; retire them so the per-worker expander state keyed by their
      // uids is dropped instead of accreting across service lifetimes.
      for (auto& [key, entry] : cache_) sched_->RetirePlan(entry.plan->uid);
      report_.seconds = wall_.ElapsedSeconds();
      FillReportCountersLocked();
      shut_down_.store(true, std::memory_order_release);
      return report_;
    }
    sched_->Seal();
    sched_->WaitIdle();
    std::vector<FiredCompletion> fire;
    {
      // Every query has finished and almost every record already resolved
      // through its completion hook; sweep the stragglers whose hook is
      // still mid-flight on a worker, so Wait/TryGet after Shutdown are
      // pure reads and every slot is released *before* Join assembles its
      // report — a long-lived service then shuts down without
      // materialising an O(ever-submitted) outcome vector.
      std::lock_guard<std::mutex> lock(mutex_);
      std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
      for (auto& rec : records_) ResolveFinishedLocked(rec, &fire);
    }
    resolve_cv_.notify_all();
    FireCompletions(&fire);
    SchedulerReport sr = sched_->Join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      report_.workers = std::move(sr.workers);
      report_.peak_task_bytes = sr.peak_task_bytes;
      report_.seconds = sr.seconds;
      FillReportCountersLocked();
    }
    shut_down_.store(true, std::memory_order_release);
    return report_;
  }

  uint32_t num_threads() const { return sched_->num_threads(); }

  uint64_t finished_queries() const {
    return finished_.load(std::memory_order_acquire);
  }

  ServiceGauges Gauges() {
    ServiceGauges g;
    g.finished = finished_.load(std::memory_order_acquire);
    g.live_contexts = sched_->LiveContexts();
    g.retained_slots = sched_->RetainedSlots();
    g.rejected = rejected_.load(std::memory_order_acquire);
    return g;
  }

  // ------------------------------------------------- ticket entry points --

  // Wait/WaitFor/TryGet live on Ticket itself: the read side parks on the
  // record's gate pin, never on the service, so a ticket held across its
  // service's destruction (catalog unload racing a waiter) stays safe.

  bool Cancel(const std::shared_ptr<QueryRecord>& rec) {
    if (rec->resolved.load(std::memory_order_acquire)) return false;
    std::vector<FiredCompletion> fire;
    std::vector<uint32_t> subs;
    bool mirror = false;
    {
      // Classify under resolve_mutex_: re-dispatch moves a record from
      // mirror to executed concurrently, so an unlocked canonical check
      // could route the cancel at a stale shape.
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (rec->resolved.load(std::memory_order_acquire)) return false;
      if (rec->canonical != nullptr) {
        // Mirror: detach and resolve as cancelled, leaving the canonical
        // execution and any sibling mirrors untouched — a cancel aimed at
        // the mirror never propagates to the shared execution, and a
        // canonical that already ended abnormally cannot drag the mirror
        // with it (such a mirror was about to re-dispatch; this cancel
        // wins and the re-dispatch skips it).
        QueryOutcome out;
        out.status = QueryStatus::kCancelled;
        ResolveLocked(rec, out, &fire, nullptr);
        mirror = true;
      } else if (rec->redispatching) {
        // Detached from its canonical but its pool submission has not
        // attached yet — nothing to target; the attachment observes the
        // flag and cancels on the way out.
        rec->cancel_pending = true;
        return true;
      } else if (rec->fan != nullptr) {
        subs = rec->fan->sub;
        // Slices still inside their own Submit call attach later;
        // AttachShardIndex observes the flag and cancels them then.
        rec->fan->cancel_issued = true;
      }
    }
    if (mirror) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
      return true;
    }
    if (!subs.empty()) {
      // Sharded: cancel every attached sub-query; the fan resolves
      // (status kCancelled dominating ok/limit) once every slice does.
      bool any = false;
      for (uint32_t idx : subs) {
        if (idx != kNotScheduled && sched_->Cancel(idx)) any = true;
      }
      return any;
    }
    // Resolution arrives through the scheduler's completion hook —
    // synchronously inside this call for queries cancelled while queued,
    // at the next task boundary for in-flight ones. A released slot
    // reports false here (long finished).
    return sched_->Cancel(rec->sched_index);
  }

 private:
  // Shared tail of both Shutdown modes. Callers hold mutex_.
  void FillReportCountersLocked() {
    report_.submitted = submitted_;
    report_.executed = executed_;
    report_.mirrored = mirrored_;
    report_.redispatched = redispatched_;
    report_.rejected = rejected_.load(std::memory_order_acquire);
    report_.plan_errors = plan_errors_;
    report_.plan_cache_hits = plan_cache_hits_;
    report_.plan_cache_isomorphic_hits = plan_cache_iso_hits_;
    report_.unique_plans = unique_plans_;
  }

  // One resolved record whose user-visible hooks are ready to fire once
  // every lock is released. The shared_ptr keeps the outcome alive
  // independent of the record registry.
  struct FiredCompletion {
    std::shared_ptr<QueryRecord> rec;
    std::function<void(const QueryOutcome&)> fn;
  };

  // Invokes the harvested hooks: the per-submit hook first, then the
  // service-wide one. Callers must hold no service or scheduler lock —
  // hooks may re-enter the read-side API (Ticket::TryGet).
  void FireCompletions(std::vector<FiredCompletion>* fire) {
    for (FiredCompletion& f : *fire) {
      if (f.fn) f.fn(f.rec->outcome);
      if (options_.on_query_complete) {
        options_.on_query_complete(f.rec->id, f.rec->outcome);
      }
    }
    fire->clear();
  }

  // The scheduler-level completion hook attached to every pool submission,
  // and the heart of completion-driven delivery: the moment the scheduler
  // finalises the query, the record resolves (slot released, mirrors
  // resolved along), every Ticket::Wait is woken, and the user hooks fire
  // — all on the thread that finalised the outcome.
  void OnSchedulerComplete(const std::shared_ptr<QueryRecord>& rec,
                           const QueryOutcome& out) {
    std::vector<FiredCompletion> fire;
    std::vector<std::shared_ptr<QueryRecord>> redispatch;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, out, &fire, &redispatch);
      }
      // Claimed in the same critical section that publishes the resolved
      // flag, so a shared-pool Shutdown observing every record resolved
      // either sees this delivery finished or sees hook_busy_ > 0 — never
      // the gap where it could destroy the service under a live delivery.
      ++hook_busy_;
    }
    DeliverResolutions(&fire, &redispatch);
  }

  // The post-resolution delivery tail of a pool-worker completion hook:
  // wake waiters, fire user hooks, re-dispatch any mirrors the resolution
  // orphaned, then drop the delivery claim taken under resolve_mutex_.
  // Re-dispatch happens under the claim: the orphaned mirrors are
  // unresolved records, so a shared-pool Shutdown cannot pass
  // WaitRecordsResolved until they resolve, and holding the claim keeps
  // the service alive for the re-dispatch submissions themselves. The
  // final notify happens *under* the lock and is the thread's last touch
  // of the service, so a Shutdown waiter that wakes on it can safely let
  // the service be destroyed.
  void DeliverResolutions(std::vector<FiredCompletion>* fire,
                          std::vector<std::shared_ptr<QueryRecord>>*
                              redispatch) {
    resolve_cv_.notify_all();
    FireCompletions(fire);
    if (redispatch != nullptr) RedispatchMirrors(redispatch);
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    --hook_busy_;
    resolve_cv_.notify_all();
  }

  // Stores `out` as the record's final outcome, releases whatever the
  // record still pins (its scheduler slot and, for plan-cache-off
  // submissions, the compiled plan), feeds the measured task count back
  // into the plan-cache cost tracker (cost-aware WFQ), settles attached
  // mirrors, and harvests the completion hooks into *fire for lock-free
  // delivery by the caller. Mirrors resolve from the same outcome when it
  // is mirrorable (ok / limit); otherwise they are handed to *redispatch
  // for independent re-execution once every lock is dropped — unless
  // redispatch is null (Shutdown's resolve-all sweep and other paths where
  // re-dispatch is impossible), in which case they fate-share the outcome
  // as a last resort. Callers hold resolve_mutex_, guarantee
  // !rec->resolved, and notify resolve_cv_ after releasing the lock.
  // Recursion depth is one: mirrors have no mirrors.
  void ResolveLocked(const std::shared_ptr<QueryRecord>& rec,
                     const QueryOutcome& out,
                     std::vector<FiredCompletion>* fire,
                     std::vector<std::shared_ptr<QueryRecord>>* redispatch) {
    rec->outcome = out;
    rec->outcome.mirrored = rec->canonical != nullptr;
    if (rec->outcome.span.enabled) {
      // The record resolves exactly once, so this stamp is exactly-once
      // per query — mirrors get their own stamp when they resolve off the
      // canonical's outcome a moment later.
      rec->outcome.span.resolve_seconds = MonotonicSeconds();
    }
    if (rec->plan_cost != nullptr && rec->canonical == nullptr &&
        out.status == QueryStatus::kOk) {
      // Only complete runs measure the plan's true cost; partial runs
      // (timeout/cancel/limit) undercount and would skew later charges.
      rec->plan_cost->store(std::max<uint64_t>(1, out.stats.expansions),
                            std::memory_order_relaxed);
    }
    if (rec->plan_live != nullptr) {
      // Unpins the plan-cache entry for LRU eviction; exactly once per
      // record (resolution is exactly-once).
      rec->plan_live->fetch_sub(1, std::memory_order_acq_rel);
      rec->plan_live.reset();
    }
    if (rec->outcome.status == QueryStatus::kRejected &&
        rec->canonical == nullptr) {
      rejected_.fetch_add(1, std::memory_order_acq_rel);
    }
    rec->resolved.store(true, std::memory_order_release);
    ReleaseSlotLocked(rec.get());
    fire->push_back({rec, std::move(rec->completion)});
    const bool mirrorable = Mirrorable(rec->outcome.status);
    for (std::shared_ptr<QueryRecord>& m : rec->mirrors) {
      if (m->resolved.load(std::memory_order_acquire)) continue;
      if (mirrorable || redispatch == nullptr) {
        ResolveLocked(m, rec->outcome, fire, nullptr);
      } else {
        m->redispatching = true;
        redispatch->push_back(m);
      }
    }
    rec->mirrors.clear();
    if (rec->sched_index != kNotScheduled || rec->fan != nullptr) {
      // The finished-count gate of the wire server's poll fallback: bumped
      // strictly after this record's resolved flag AND after its mirrors
      // resolved (the fetch_add is visible to the lock-free sweep while
      // resolve_mutex_ is still held — a bump before the mirror loop would
      // let the sweep latch its gate past a mirror that resolves a few
      // instructions later and strand its outcome), so an observer of the
      // advanced count always finds every dependent outcome retrievable.
      // A sharded record's fan is set before any slice is submitted, so
      // no attachment catch-up is needed on the fan path.
      finished_.fetch_add(1, std::memory_order_release);
    }
  }

  // Releases the resolved record's scheduler slot(s) and, for
  // plan-cache-off submissions, retires + frees the plan that served
  // exactly this query. Callers hold resolve_mutex_.
  void ReleaseSlotLocked(QueryRecord* rec) {
    if (rec->fan != nullptr) {
      if (rec->released) return;
      rec->released = true;
      // Parent resolution means every slice's completion hook already ran,
      // so every attached sub-slot is releasable; slices still inside
      // their own Submit call release at attachment (AttachShardIndex).
      for (uint32_t idx : rec->fan->sub) {
        if (idx != kNotScheduled) sched_->Release(idx);
      }
    } else {
      if (rec->released || rec->sched_index == kNotScheduled) return;
      rec->released = true;
      sched_->Release(rec->sched_index);
    }
    if (rec->owned_plan != nullptr) {
      sched_->RetirePlan(rec->owned_plan->uid);
      rec->owned_plan.reset();
      rec->owned_query = Hypergraph();
    }
  }

  // Publishes the scheduler index of a just-submitted record, and finishes
  // any slot release the completion hook had to skip because it ran before
  // the index was known: a query can finalise on the pool (or synchronously
  // inside Submit, on the rejection path) before Submit's caller regains
  // control, and ResolveLocked then finds kNotScheduled. The catch-up also
  // performs the finished-count bump that gates the poll fallback.
  void AttachSchedIndex(const std::shared_ptr<QueryRecord>& rec,
                        uint32_t index) {
    bool cancel = false;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      rec->sched_index = index;
      // A re-dispatched mirror is targetable again from here on; honour a
      // Cancel() that arrived while it had no scheduler index.
      rec->redispatching = false;
      cancel = rec->cancel_pending;
      if (rec->resolved.load(std::memory_order_acquire) && !rec->released) {
        ReleaseSlotLocked(rec.get());
        finished_.fetch_add(1, std::memory_order_release);
      }
    }
    if (cancel) sched_->Cancel(index);
  }

  // Fan analogue of AttachSchedIndex: publishes slice k's scheduler index.
  // If the parent already resolved (this slice finished synchronously
  // inside its own Submit and was the last one), the slot is released
  // right here — the parent's ReleaseSlotLocked could not reach it. If a
  // cancellation was issued while this slice was mid-Submit, it is
  // cancelled on the way out.
  void AttachShardIndex(const std::shared_ptr<QueryRecord>& rec, uint32_t k,
                        uint32_t index) {
    bool cancel = false;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      if (rec->released) {
        sched_->Release(index);
        return;
      }
      rec->fan->sub[k] = index;
      cancel = rec->fan->cancel_issued;
    }
    if (cancel) sched_->Cancel(index);
  }

  // Completion hook of fan slice k: fold the slice outcome into the
  // parent's running merge; the parent resolves when the last slice does.
  // A rejected slice (queue-bound shed) cancels its siblings so the fan
  // resolves promptly as kRejected instead of burning pool time on a
  // result that is already lost.
  void OnShardComplete(const std::shared_ptr<QueryRecord>& rec, uint32_t k,
                       const QueryOutcome& out) {
    std::vector<uint32_t> to_cancel;
    std::vector<FiredCompletion> fire;
    std::vector<std::shared_ptr<QueryRecord>> redispatch;
    bool resolved_now = false;
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      ShardFan* fan = rec->fan.get();
      MergeShardOutcome(&fan->merged, out, fan->any);
      if (out.span.enabled) {
        fan->merged.span.slices.push_back({k, out.span.admit_seconds,
                                           out.span.first_task_seconds,
                                           out.span.last_task_seconds});
      }
      fan->any = true;
      if (out.status == QueryStatus::kRejected && !fan->cancel_issued) {
        fan->cancel_issued = true;
        for (uint32_t idx : fan->sub) {
          if (idx != kNotScheduled) to_cancel.push_back(idx);
        }
      }
      if (--fan->remaining == 0 &&
          !rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, fan->merged, &fire, &redispatch);
        resolved_now = true;
      }
      ++hook_busy_;  // see OnSchedulerComplete
    }
    // Cancel outside resolve_mutex_: Cancel fires sibling completion hooks
    // synchronously for still-queued slices, and those hooks re-enter this
    // function.
    for (uint32_t idx : to_cancel) sched_->Cancel(idx);
    if (resolved_now) {
      DeliverResolutions(&fire, &redispatch);
    } else {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      --hook_busy_;
      resolve_cv_.notify_all();
    }
  }

  // Resolves a record outside the scheduler path (plan errors, sealed
  // submissions, mirrors of already-finished canonicals). Callers hold no
  // lock beyond mutex_ and fire + notify after releasing it. Such records
  // are always freshly created in the same Submit call, so they carry no
  // mirrors and need no re-dispatch list.
  void ResolveNow(const std::shared_ptr<QueryRecord>& rec,
                  const QueryOutcome& out,
                  std::vector<FiredCompletion>* fire) {
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    if (!rec->resolved.load(std::memory_order_acquire)) {
      ResolveLocked(rec, out, fire, nullptr);
    }
  }

  // Shutdown path: resolve a straggler record from its finished scheduler
  // slot (or its canonical record, resolved first — which resolves this
  // mirror along). Callers hold mutex_ + resolve_mutex_ after
  // Seal()+WaitIdle(), so every query has finished and every unresolved
  // record's slot is still retained. The pool is sealed, so a mirror of an
  // abnormally-ended canonical cannot be re-dispatched here — it keeps the
  // canonical's outcome (the one remaining, documented fate-share).
  void ResolveFinishedLocked(const std::shared_ptr<QueryRecord>& rec,
                             std::vector<FiredCompletion>* fire) {
    if (rec->resolved.load(std::memory_order_acquire)) return;
    if (rec->canonical != nullptr) {
      ResolveFinishedLocked(rec->canonical, fire);
      if (!rec->resolved.load(std::memory_order_acquire)) {
        ResolveLocked(rec, rec->canonical->outcome, fire, nullptr);
      }
      return;
    }
    if (rec->fan != nullptr) {
      // Owned-mode Shutdown after Seal()+WaitIdle(): every slice finished
      // and attached (Submit callers are gone), so re-merge the lot — the
      // straggler here is the parent whose last hook is still mid-flight,
      // and a fresh merge of the authoritative per-slice outcomes is
      // race-free.
      QueryOutcome merged;
      bool any = false;
      for (uint32_t k = 0; k < rec->fan->sub.size(); ++k) {
        const uint32_t idx = rec->fan->sub[k];
        if (idx == kNotScheduled) continue;
        const QueryOutcome* out = sched_->TryGetQuery(idx);
        if (out == nullptr) return;  // hook mid-flight; resolves itself
        MergeShardOutcome(&merged, *out, any);
        if (out->span.enabled) {
          merged.span.slices.push_back({k, out->span.admit_seconds,
                                        out->span.first_task_seconds,
                                        out->span.last_task_seconds});
        }
        any = true;
      }
      if (any) ResolveLocked(rec, merged, fire, nullptr);
      return;
    }
    const QueryOutcome* out = sched_->TryGetQuery(rec->sched_index);
    if (out != nullptr) ResolveLocked(rec, *out, fire, nullptr);
  }

  // Re-dispatches mirrors orphaned by a canonical that ended with a
  // non-mirrorable outcome (cancelled / timed out): each becomes an
  // independent execution on the shared compiled plan it pinned at
  // attachment, keeping its own budgets, tenant WFQ charge, completion
  // hook and trace options. The first accepted re-dispatch takes over as
  // the structure's canonical, so mirroring resumes without waiting for
  // an external repeat. Callers hold NO lock (this takes mutex_, and a
  // queue-shed submission fires completion hooks synchronously inside
  // SubmitToPool). A mirror cancelled in the hand-off window is skipped;
  // when the service sealed in the meantime the pool would never admit
  // the submission, so the mirror keeps the canonical's outcome (the
  // documented shutdown fate-share).
  void RedispatchMirrors(std::vector<std::shared_ptr<QueryRecord>>* list) {
    if (list->empty()) return;
    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::shared_ptr<QueryRecord>& m : *list) {
        {
          std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
          if (m->resolved.load(std::memory_order_acquire)) continue;
          if (sealed_) {
            ResolveLocked(m, m->canonical->outcome, &fire, nullptr);
            continue;
          }
          m->canonical.reset();
        }
        // From here the record is an executed submission: move its count
        // from mirrored to executed/rejected (CountScheduledLocked and
        // the shed path below keep the submitted = executed + mirrored +
        // rejected + plan_errors ledger exact).
        --mirrored_;
        ++redispatched_;
        Metrics().redispatched->Add();
        SubmitToPool(m, m->mirror_plan, m->mirror_options, m->plan_cost);
        const bool accepted = CountScheduledLocked(m.get());
        auto cit = cache_.find(m->cache_key);
        if (accepted && cit != cache_.end()) {
          CacheEntry& entry = cit->second;
          const bool bad_canonical =
              entry.canonical->resolved.load(std::memory_order_acquire) &&
              !Mirrorable(entry.canonical->outcome.status);
          // A re-dispatch that was itself cancelled synchronously on the
          // way in (cancel_pending) is no better a canonical than the one
          // it replaces.
          const bool usable =
              !m->resolved.load(std::memory_order_acquire) ||
              Mirrorable(m->outcome.status);
          if (bad_canonical && usable) entry.canonical = m;
        }
      }
    }
    if (!fire.empty()) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
    }
    list->clear();
  }

  void EnsureStarted() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      sched_->Start();
      started_ = true;
    }
  }

  double EffectiveTimeout(const SubmitOptions& so) const {
    return so.timeout_seconds < 0 ? options_.parallel.timeout_seconds
                                  : so.timeout_seconds;
  }

  uint64_t EffectiveLimit(const SubmitOptions& so) const {
    return so.limit == SubmitOptions::kInheritLimit ? options_.parallel.limit
                                                    : so.limit;
  }

  struct CacheEntry {
    const QueryPlan* plan = nullptr;
    // The cached plan itself (the entry is its owner, so evicting the
    // entry frees it).
    std::unique_ptr<QueryPlan> owned;
    // Exact structural key of the query the plan was compiled from. Under
    // the isomorphism-aware cache key, a hit whose own exact key differs
    // is an *isomorphic* hit (renamed vertices / reordered hyperedges):
    // counts transfer unchanged, but embedding tuples would follow this
    // query's edge numbering, so sink-ful isomorphic repeats compile
    // their own plan.
    std::string exact_key;
    // Source of mirrored outcomes; replaced when the original ends
    // unusably and a later accepted run takes over.
    std::shared_ptr<QueryRecord> canonical;
    // The record whose owned_query the cached plan references. Never
    // replaced: it pins the query hypergraph for as long as the plan can
    // be submitted, even after `canonical` moves on.
    std::shared_ptr<QueryRecord> plan_owner;
    // Latest measured task count of a completed run of this plan (0 = not
    // yet measured); the cost-aware WFQ charge of later submissions.
    std::shared_ptr<std::atomic<uint64_t>> cost;
    // In-flight submissions of this plan (eviction guard: only idle —
    // live == 0 — entries may be evicted). Atomic because records
    // decrement it at resolution under resolve_mutex_, while the cache
    // reads it under mutex_.
    std::shared_ptr<std::atomic<uint32_t>> live;
    // Position in lru_ (most-recent first); spliced to the front on every
    // hit. Guarded by mutex_.
    std::list<std::string>::iterator lru_it;
    double timeout_seconds = 0;  // the canonical's effective budgets: only
    uint64_t limit = 0;          // repeats under equal budgets may mirror
  };

  // The scheduler-bound SubmitOptions of one pool submission: the user's
  // parameters, the cost-aware WFQ charge (charge this admission by the
  // plan's last measured task count; first-seen plans keep the flat 1),
  // and the service's internal completion hook in place of the user's —
  // the user hooks fire at service-level resolution, inside that hook.
  SubmitOptions SchedulerSubmit(
      const SubmitOptions& so, const std::shared_ptr<QueryRecord>& rec,
      const std::shared_ptr<std::atomic<uint64_t>>& plan_cost) {
    SubmitOptions effective = so;
    // Resolve budget inheritance against *this service's* defaults: on a
    // shared pool the scheduler's own defaults belong to the pool, not to
    // this service.
    effective.timeout_seconds = EffectiveTimeout(so);
    effective.limit = EffectiveLimit(so);
    if (plan_cost != nullptr && options_.cost_aware_wfq &&
        options_.admission == AdmissionPolicy::kWeightedFair) {
      const uint64_t measured = plan_cost->load(std::memory_order_relaxed);
      if (measured > 0) effective.cost = static_cast<double>(measured);
    }
    effective.completion = [this, rec](const QueryOutcome& out) {
      OnSchedulerComplete(rec, out);
    };
    return effective;
  }

  // Hands one record to the pool: plain single submission when sharding
  // is off, otherwise a K-way scan-slice fan-out whose slices merge back
  // into the one record (see ShardFan). Callers hold mutex_.
  void SubmitToPool(const std::shared_ptr<QueryRecord>& rec,
                    const QueryPlan* plan, const SubmitOptions& so,
                    const std::shared_ptr<std::atomic<uint64_t>>& plan_cost) {
    const uint32_t shards = std::max<uint32_t>(1, options_.shards);
    if (shards == 1) {
      AttachSchedIndex(rec, sched_->Submit(plan, data_,
                                           SchedulerSubmit(so, rec,
                                                           plan_cost)));
      return;
    }
    auto fan = std::make_shared<ShardFan>();
    fan->remaining = shards;
    fan->sub.assign(shards, kNotScheduled);
    if (so.sink != nullptr) {
      fan->locked_sink = std::make_unique<LockedSink>(so.sink);
    }
    {
      std::lock_guard<std::mutex> lock(resolve_mutex_);
      rec->fan = fan;
      // A re-dispatched mirror's cancel routing moves to the fan from
      // here on; carry over a Cancel() that raced the re-dispatch.
      rec->redispatching = false;
      fan->cancel_issued = rec->cancel_pending;
    }
    for (uint32_t k = 0; k < shards; ++k) {
      SubmitOptions sub = SchedulerSubmit(so, rec, plan_cost);
      sub.scan_slice = k;
      sub.scan_slices = shards;
      // Charge the fan's admission cost once across its slices, not K
      // times (the plan's measured cost covers the whole embedding set).
      sub.cost = std::max(1.0, sub.cost / shards);
      if (fan->locked_sink != nullptr) sub.sink = fan->locked_sink.get();
      sub.completion = [this, rec, k](const QueryOutcome& out) {
        OnShardComplete(rec, k, out);
      };
      AttachShardIndex(rec, k, sched_->Submit(plan, data_, sub));
    }
  }

  // `borrowed` is null for owning submits (the query then lives in
  // rec->owned_query).
  Ticket SubmitRecord(std::shared_ptr<QueryRecord> rec,
                      const Hypergraph* borrowed, const SubmitOptions& so) {
    const Hypergraph& query =
        borrowed != nullptr ? *borrowed : rec->owned_query;
    rec->service = this;
    rec->gate = gate_;
    rec->completion = so.completion;

    std::vector<FiredCompletion> fire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SweepResolvedRecordsLocked();
      rec->id = submitted_++;
      if (sealed_) {
        rec->plan_status = Status::InvalidArgument("service is shut down");
        ++plan_errors_;
        QueryOutcome out;
        out.status = QueryStatus::kPlanError;
        ResolveNow(rec, out, &fire);
        records_.push_back(rec);
      } else {
        SubmitOpenLocked(rec, query, so, &fire);
      }
    }
    // Synchronously resolved submissions (rejections, plan errors, mirrors
    // of finished canonicals) deliver their hooks before Submit returns;
    // hooks of executed queries fire from the pool when they finish.
    if (!fire.empty()) {
      resolve_cv_.notify_all();
      FireCompletions(&fire);
    }
    return Ticket(std::move(rec));
  }

  // The not-sealed body of SubmitRecord. Callers hold mutex_.
  void SubmitOpenLocked(const std::shared_ptr<QueryRecord>& rec,
                        const Hypergraph& query, const SubmitOptions& so,
                        std::vector<FiredCompletion>* fire) {
    std::string key;
    std::string exact_key;
    // A sink-ful isomorphic (non-exact) hit: the cached plan's embedding
    // tuples follow its own query's edge numbering, so this submission
    // compiles a private plan below instead of reusing it — and must not
    // insert it, the key is already taken.
    bool uncacheable_hit = false;
    if (options_.plan_cache) {
      if (options_.plan_cache_isomorphism) {
        CanonicalKey ck = CanonicalQueryKey(query);
        key = std::move(ck.key);
        exact_key = std::move(ck.exact);
      } else {
        exact_key = ExactQueryKey(query);
        key = 'X' + exact_key;
      }
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        CacheEntry& entry = it->second;
        const bool exact_hit = entry.exact_key == exact_key;
        if (so.sink != nullptr && !exact_hit) {
          uncacheable_hit = true;
        } else {
          ++plan_cache_hits_;
          if (exact_hit) {
            Metrics().plan_cache_hits_exact->Add();
          } else {
            ++plan_cache_iso_hits_;
            Metrics().plan_cache_hits_isomorphic->Add();
          }
          if (options_.plan_cache_capacity > 0) {
            lru_.splice(lru_.begin(), lru_, entry.lru_it);
          }
          const bool same_budgets =
              EffectiveTimeout(so) == entry.timeout_seconds &&
              EffectiveLimit(so) == entry.limit;
          if (so.sink == nullptr && same_budgets) {
            // Mirror candidate: decided under resolve_mutex_ so the
            // canonical's resolution cannot slip between the check and the
            // attachment. Counts are isomorphism-invariant, so isomorphic
            // repeats mirror exactly like exact ones.
            bool handled = false;
            {
              std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
              if (!entry.canonical->resolved.load(
                      std::memory_order_acquire)) {
                // Attach to the running canonical. The mirror pins the
                // cache entry and remembers the shared plan plus its own
                // SubmitOptions: if the canonical ends cancelled or timed
                // out, the mirror re-dispatches as an independent
                // execution instead of inheriting that fate.
                rec->canonical = entry.canonical;
                rec->mirror_plan = entry.plan;
                rec->mirror_options = so;
                rec->mirror_options.completion = nullptr;
                rec->cache_key = key;
                rec->plan_cost = entry.cost;
                rec->plan_live = entry.live;
                entry.live->fetch_add(1, std::memory_order_acq_rel);
                entry.canonical->mirrors.push_back(rec);
                handled = true;
              } else if (Mirrorable(entry.canonical->outcome.status)) {
                // Already finished with trustworthy counts: resolve the
                // mirror right here, from the stored outcome.
                rec->canonical = entry.canonical;
                if (!rec->resolved.load(std::memory_order_acquire)) {
                  ResolveLocked(rec, entry.canonical->outcome, fire,
                                nullptr);
                }
                handled = true;
              }
              // else: the canonical ended abnormally — fall through and
              // re-execute on the shared plan.
            }
            if (handled) {
              ++mirrored_;
              Metrics().mirrored->Add();
              records_.push_back(rec);
              return;
            }
          }
          // Re-execute on the shared plan (sink-ful repeat, different
          // budgets, or a canonical that ended abnormally).
          rec->plan_cost = entry.cost;
          if (entry.live != nullptr) {
            // Pin before the pool can race an eviction pass; unpinned
            // once, at resolution.
            rec->plan_live = entry.live;
            entry.live->fetch_add(1, std::memory_order_acq_rel);
          }
          SubmitToPool(rec, entry.plan, so, entry.cost);
          const bool bad_canonical =
              entry.canonical->resolved.load(std::memory_order_acquire) &&
              !Mirrorable(entry.canonical->outcome.status);
          if (CountScheduledLocked(rec.get()) && bad_canonical &&
              same_budgets) {
            // The cached canonical ended unusably (rejected/cancelled/
            // timeout) so repeats stopped mirroring; this accepted,
            // same-budget execution becomes the new canonical, restoring
            // mirroring for the structure once it completes.
            entry.canonical = rec;
          }
          records_.push_back(rec);
          return;
        }
      }
    }

    if (options_.plan_cache) Metrics().plan_cache_misses->Add();
    Result<QueryPlan> plan = BuildQueryPlan(query, data_);
    if (!plan.ok()) {
      rec->plan_status = plan.status();
      ++plan_errors_;
      QueryOutcome out;
      out.status = QueryStatus::kPlanError;
      ResolveNow(rec, out, fire);
      records_.push_back(rec);
      return;
    }
    auto compiled_owner = std::make_unique<QueryPlan>(std::move(plan).value());
    const QueryPlan* compiled = compiled_owner.get();
    ++unique_plans_;
    const bool cacheable = options_.plan_cache && !uncacheable_hit;
    // Everything the completion hook's resolution path reads must be in
    // place before Submit hands the record to the pool — a fast query can
    // finalise before this thread regains control.
    auto cost =
        cacheable ? std::make_shared<std::atomic<uint64_t>>(0) : nullptr;
    auto live =
        cacheable ? std::make_shared<std::atomic<uint32_t>>(1) : nullptr;
    rec->plan_cost = cost;
    rec->plan_live = live;
    SubmitToPool(rec, compiled, so, nullptr);
    const bool accepted = CountScheduledLocked(rec.get());
    if (cacheable && accepted) {
      CacheEntry e;
      e.plan = compiled;
      e.owned = std::move(compiled_owner);
      e.exact_key = std::move(exact_key);
      e.canonical = rec;
      e.plan_owner = rec;
      e.cost = std::move(cost);
      e.live = std::move(live);
      e.timeout_seconds = EffectiveTimeout(so);
      e.limit = EffectiveLimit(so);
      if (options_.plan_cache_capacity > 0) {
        lru_.push_front(key);
        e.lru_it = lru_.begin();
      }
      cache_.emplace(std::move(key), std::move(e));
      EvictIdlePlansLocked();
    } else {
      // Without the cache — or when this submission was shed by the queue
      // bound (a rejected canonical would poison the structure's cache
      // entry: repeats could never mirror again) — the plan serves exactly
      // this record; it is retired + freed at resolution (bounded
      // retention for cache-off services).
      {
        std::lock_guard<std::mutex> resolve_lock(resolve_mutex_);
        if (!rec->resolved.load(std::memory_order_acquire)) {
          rec->owned_plan = std::move(compiled_owner);
        } else {
          // Resolved synchronously inside Submit (shed by the queue
          // bound): the slot was already released, so retire the plan
          // right here instead of parking it on the record.
          sched_->RetirePlan(compiled_owner->uid);
          compiled_owner.reset();
        }
      }
    }
    records_.push_back(rec);
  }

  // Walks the LRU list cold-end-first, evicting idle (no in-flight
  // submission) entries until the cache is back under
  // plan_cache_capacity; entries pinned by a live submission are skipped,
  // so the cache transiently overshoots rather than evict a plan the pool
  // is executing. Callers hold mutex_. (Taking the scheduler's internal
  // lock via RetirePlan under mutex_ alone is safe: the scheduler never
  // calls into the service while holding its own lock.)
  void EvictIdlePlansLocked() {
    const size_t cap = options_.plan_cache_capacity;
    if (cap == 0) return;
    auto it = lru_.end();
    while (cache_.size() > cap && it != lru_.begin()) {
      --it;
      auto cit = cache_.find(*it);
      if (cit->second.live->load(std::memory_order_acquire) != 0) continue;
      sched_->RetirePlan(cit->second.plan->uid);
      Metrics().plan_cache_evictions->Add();
      // erase returns the position after the erased element; the next
      // pass's --it lands on the element before it, so the walk keeps
      // moving frontward without revisiting anything.
      it = lru_.erase(it);
      cache_.erase(cit);
    }
  }

  // A submission shed by the queue-depth bound resolves synchronously
  // inside scheduler_.Submit (through the completion hook); classify it as
  // rejected rather than executed (report semantics: `executed` = queries
  // that actually ran). Returns whether the submission was accepted onto
  // the pool. Callers hold mutex_.
  bool CountScheduledLocked(QueryRecord* rec) {
    if (rec->resolved.load(std::memory_order_acquire) &&
        rec->outcome.status == QueryStatus::kRejected) {
      return false;
    }
    ++executed_;
    return true;
  }

  // Opportunistic GC for long-lived services: a resolved record is a pure
  // read through whatever tickets still hold it and is never needed by
  // Shutdown's resolve-all loop, so it can leave the registry (the
  // shared_ptr keeps live tickets valid, and cache canonicals stay
  // reachable through cache_ / their mirrors). Amortised O(1): sweep only
  // when the registry doubled since the last sweep. Callers hold mutex_.
  void SweepResolvedRecordsLocked() {
    if (records_.size() < 64 || records_.size() < 2 * last_sweep_size_) {
      return;
    }
    std::erase_if(records_, [](const std::shared_ptr<QueryRecord>& rec) {
      return rec->resolved.load(std::memory_order_acquire);
    });
    last_sweep_size_ = records_.size();
  }

  const IndexedHypergraph& data_;
  const ServiceOptions options_;
  // Owned mode: owned_ holds the pool and sched_ points at it. Shared
  // (SchedulerPool) mode: owned_ is null and sched_ points at the pool's
  // scheduler, which outlives this service.
  std::unique_ptr<Scheduler> owned_;
  Scheduler* sched_ = nullptr;
  Timer wall_;  // service wall clock (shared-mode report seconds)

  std::mutex mutex_;  // cache, records, counters
  std::unordered_map<std::string, CacheEntry> cache_;
  // Cache keys, most-recently-used first; maintained (and non-empty) only
  // when plan_cache_capacity > 0. Guarded by mutex_.
  std::list<std::string> lru_;
  std::vector<std::shared_ptr<QueryRecord>> records_;
  uint64_t submitted_ = 0;
  uint64_t executed_ = 0;
  uint64_t mirrored_ = 0;
  uint64_t redispatched_ = 0;  // mirrors re-executed after an abnormal
                               // canonical (also counted in executed_)
  uint64_t plan_errors_ = 0;
  uint64_t plan_cache_hits_ = 0;
  uint64_t plan_cache_iso_hits_ = 0;  // hits whose exact key differed
  uint64_t unique_plans_ = 0;  // plans compiled (cached or record-owned)
  size_t last_sweep_size_ = 0;
  bool sealed_ = false;
  bool started_ = false;  // guarded by mutex_ after construction

  // Lock order: mutex_ before resolve_mutex_; scheduler-internal locks are
  // only ever taken *under* resolve_mutex_ (Release/RetirePlan/TryGet),
  // never the other way around — the scheduler fires completion hooks with
  // no lock held.
  // Record resolution + mirror lists park on the shared gate (see
  // ResolveGate); the references keep the service-internal code reading
  // as plain members.
  const std::shared_ptr<ResolveGate> gate_ = std::make_shared<ResolveGate>();
  std::mutex& resolve_mutex_ = gate_->m;
  std::condition_variable& resolve_cv_ = gate_->cv;  // armed by the hook
  std::atomic<uint64_t> finished_{0};  // pool submissions resolved
  // Pool-worker completion deliveries (notify + user hooks) currently in
  // flight; a shared-pool Shutdown waits for 0 so destroying the service
  // afterwards cannot pull state from under a live delivery. Guarded by
  // resolve_mutex_.
  uint64_t hook_busy_ = 0;
  // Service-level rejection count (this service's own shed submissions —
  // the scheduler's pool-wide counter would conflate siblings on a
  // shared pool).
  std::atomic<uint64_t> rejected_{0};

  std::mutex shutdown_mutex_;
  std::atomic<bool> shut_down_{false};
  ServiceReport report_;
};

}  // namespace internal

// ------------------------------------------------------------------ Ticket --

uint64_t Ticket::id() const { return rec_->id; }

const Status& Ticket::status() const { return rec_->plan_status; }

const QueryOutcome& Ticket::Wait() const {
  internal::QueryRecord* rec = rec_.get();
  if (rec->resolved.load(std::memory_order_acquire)) return rec->outcome;
  // Park on the record's gate pin, not the service: the service can be
  // destroyed (catalog unload drains on the completion hook) while a woken
  // waiter is still inside the condition wait, and the gate's shared
  // ownership is what keeps that legal.
  const std::shared_ptr<internal::ResolveGate> gate = rec->gate;
  std::unique_lock<std::mutex> lock(gate->m);
  gate->cv.wait(lock, [rec] {
    return rec->resolved.load(std::memory_order_acquire);
  });
  return rec->outcome;
}

const QueryOutcome* Ticket::Wait(double timeout_seconds) const {
  internal::QueryRecord* rec = rec_.get();
  if (rec->resolved.load(std::memory_order_acquire)) return &rec->outcome;
  const std::shared_ptr<internal::ResolveGate> gate = rec->gate;
  std::unique_lock<std::mutex> lock(gate->m);
  gate->cv.wait_for(
      lock,
      std::chrono::duration<double>(timeout_seconds > 0 ? timeout_seconds : 0),
      [rec] { return rec->resolved.load(std::memory_order_acquire); });
  return rec->resolved.load(std::memory_order_acquire) ? &rec->outcome
                                                       : nullptr;
}

const QueryOutcome* Ticket::TryGet() const {
  // Resolution is eager (completion hook), so the resolved flag is the
  // whole truth — no scheduler consultation, no lock, no service touch.
  return rec_->resolved.load(std::memory_order_acquire) ? &rec_->outcome
                                                        : nullptr;
}

bool Ticket::Cancel() const {
  if (rec_->resolved.load(std::memory_order_acquire)) return false;
  return rec_->service->Cancel(rec_);
}

// ----------------------------------------------------------- SchedulerPool --

SchedulerOptions ToSchedulerOptions(const ServiceOptions& o) {
  SchedulerOptions so;
  so.parallel = o.parallel;
  so.admission = o.admission;
  so.max_inflight_queries = o.max_inflight_queries;
  so.max_queued_queries = o.max_queued_queries;
  so.task_quota = o.task_quota;
  so.batch_timeout_seconds = o.run_timeout_seconds;
  return so;
}

SchedulerPool::SchedulerPool(const ServiceOptions& options)
    : scheduler_(std::make_unique<Scheduler>(ToSchedulerOptions(options))) {
  scheduler_->Start();
}

SchedulerPool::~SchedulerPool() {
  scheduler_->Seal();
  scheduler_->Join();
}

// ------------------------------------------------------------ MatchService --

MatchService::MatchService(const IndexedHypergraph& data,
                           const ServiceOptions& options)
    : impl_(std::make_unique<internal::ServiceImpl>(data, options)) {}

MatchService::MatchService(const IndexedHypergraph& data, SchedulerPool& pool,
                           const ServiceOptions& options)
    : impl_(std::make_unique<internal::ServiceImpl>(data, pool, options)) {}

MatchService::~MatchService() = default;

Ticket MatchService::Submit(Hypergraph query, const SubmitOptions& options) {
  return impl_->Submit(std::move(query), options);
}

Ticket MatchService::SubmitBorrowed(const Hypergraph& query,
                                    const SubmitOptions& options) {
  return impl_->SubmitBorrowed(query, options);
}

std::vector<Ticket> MatchService::SubmitBatch(
    std::vector<BatchSubmission> batch) {
  return impl_->SubmitBatch(std::move(batch));
}

void MatchService::Drain() { impl_->Drain(); }

ServiceReport MatchService::Shutdown() { return impl_->Shutdown(); }

uint32_t MatchService::num_threads() const { return impl_->num_threads(); }

uint64_t MatchService::finished_queries() const {
  return impl_->finished_queries();
}

ServiceGauges MatchService::Gauges() { return impl_->Gauges(); }

}  // namespace hgmatch
