#ifndef HGMATCH_PARALLEL_DATAFLOW_H_
#define HGMATCH_PARALLEL_DATAFLOW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/indexed_hypergraph.h"
#include "core/matching_order.h"
#include "core/result.h"
#include "core/types.h"

namespace hgmatch {

/// The logical dataflow graph of a query (Section VI.A): a directed path
/// SCAN -> EXPAND* -> SINK where each operator carries the query hyperedge
/// it matches. The physical execution of the graph is the task-based
/// scheduler (executor.h); this class is the logical plan representation
/// used by the plan generator, by EXPLAIN-style tooling, and by the
/// extension operators below.
class DataflowGraph {
 public:
  enum class OperatorKind { kScan, kExpand, kSink };

  struct Operator {
    OperatorKind kind;
    /// Plan step this operator executes (kScan: 0; kSink: NumSteps()).
    uint32_t step = 0;
    /// Signature of the query hyperedge matched (empty for kSink).
    Signature signature;
  };

  /// Derives the dataflow graph of a compiled plan (always a path, Fig 5a).
  static DataflowGraph FromPlan(const QueryPlan& plan);

  const std::vector<Operator>& operators() const { return operators_; }

  /// Human-readable plan, one operator per line; when `data` is non-null
  /// each SCAN/EXPAND line is annotated with the hyperedge cardinality
  /// Card(e,H) the plan generator used (Fig 3 "fetch cardinality").
  std::string ToString(const IndexedHypergraph* data = nullptr) const;

 private:
  std::vector<Operator> operators_;
};

/// --- Extension operators -------------------------------------------------
///
/// The paper's Section VI.A Remark sketches extending the dataflow with
/// extra operators (property filtering, aggregation) as future work; these
/// sink adaptors realise exactly that: because every operator after the
/// last EXPAND consumes complete embeddings, post-processing operators
/// compose as sink decorators without touching the engine.

/// FILTER operator: forwards only embeddings accepted by a predicate.
class FilterSink : public EmbeddingSink {
 public:
  using Predicate = std::function<bool(const EdgeId* edges, uint32_t size)>;

  FilterSink(Predicate predicate, EmbeddingSink* next)
      : predicate_(std::move(predicate)), next_(next) {}

  void Emit(const EdgeId* edges, uint32_t size) override {
    ++seen_;
    if (predicate_(edges, size)) {
      ++passed_;
      if (next_ != nullptr) next_->Emit(edges, size);
    }
  }

  uint64_t seen() const { return seen_; }
  uint64_t passed() const { return passed_; }

 private:
  Predicate predicate_;
  EmbeddingSink* next_;
  uint64_t seen_ = 0;
  uint64_t passed_ = 0;
};

/// AGGREGATE operator: counts embeddings grouped by a caller-supplied key
/// (e.g. the data hyperedge matched to a chosen query hyperedge).
class GroupCountSink : public EmbeddingSink {
 public:
  using KeyFn = std::function<uint64_t(const EdgeId* edges, uint32_t size)>;

  explicit GroupCountSink(KeyFn key) : key_(std::move(key)) {}

  void Emit(const EdgeId* edges, uint32_t size) override {
    ++counts_[key_(edges, size)];
  }

  const std::map<uint64_t, uint64_t>& counts() const { return counts_; }

 private:
  KeyFn key_;
  std::map<uint64_t, uint64_t> counts_;
};

}  // namespace hgmatch

#endif  // HGMATCH_PARALLEL_DATAFLOW_H_
