#include "parallel/bfs_executor.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/candidates.h"
#include "util/timer.h"

namespace hgmatch {

BfsResult ExecutePlanBfs(const IndexedHypergraph& data, const QueryPlan& plan,
                         const ParallelOptions& options,
                         EmbeddingSink* sink) {
  BfsResult result;
  Timer wall;
  const Deadline deadline = Deadline::After(options.timeout_seconds);
  const uint32_t n = plan.NumSteps();
  const uint32_t threads = options.num_threads != 0
                               ? options.num_threads
                               : std::max(1u, std::thread::hardware_concurrency());
  if (n == 0) return result;

  // Level 0: the signature-table scan, materialised as depth-1 rows.
  std::vector<EdgeId> current;  // flattened rows of `depth` edges each
  uint32_t depth = 1;
  const Partition* first = data.FindPartition(plan.steps[0].signature);
  if (first != nullptr) current = first->edges();

  auto track_peak = [&result](uint64_t bytes) {
    if (bytes > result.peak_bytes) result.peak_bytes = bytes;
  };
  track_peak(current.size() * sizeof(EdgeId));

  std::mutex merge_mutex;
  std::atomic<bool> stop{false};

  while (depth < n && !current.empty()) {
    const uint64_t rows = current.size() / depth;
    std::vector<EdgeId> next;
    std::atomic<uint64_t> next_row{0};
    std::atomic<uint64_t> next_bytes{0};
    std::vector<MatchStats> worker_stats(threads);

    auto body = [&](uint32_t worker_id) {
      Expander expander(data, plan);
      std::vector<EdgeId> valid;
      std::vector<EdgeId> local_out;
      MatchStats& stats = worker_stats[worker_id];
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t row = next_row.fetch_add(1, std::memory_order_relaxed);
        if (row >= rows) break;
        const EdgeId* prefix = current.data() + row * depth;
        expander.Expand(prefix, depth, &valid, &stats);
        for (EdgeId c : valid) {
          for (uint32_t i = 0; i < depth; ++i) local_out.push_back(prefix[i]);
          local_out.push_back(c);
        }
        next_bytes.fetch_add(valid.size() * (depth + 1) * sizeof(EdgeId),
                             std::memory_order_relaxed);
        if (deadline.Expired()) {
          stats.timed_out = true;
          stop.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      next.insert(next.end(), local_out.begin(), local_out.end());
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i) pool.emplace_back(body, i);
    for (auto& t : pool) t.join();

    for (const MatchStats& s : worker_stats) result.stats += s;
    // Peak = both levels resident at the hand-over point.
    track_peak(current.size() * sizeof(EdgeId) +
               next_bytes.load(std::memory_order_relaxed));
    current.swap(next);
    ++depth;
    if (stop.load(std::memory_order_relaxed)) break;
  }

  if (!result.stats.timed_out && depth == n) {
    const uint64_t rows = n == 0 ? 0 : current.size() / n;
    result.stats.embeddings = rows;
    if (sink != nullptr) {
      for (uint64_t r = 0; r < rows; ++r) {
        sink->Emit(current.data() + r * n, n);
      }
    }
  }
  result.stats.seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace hgmatch
